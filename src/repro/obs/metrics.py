"""Counters, gauges and streaming histograms for the toolkit's hot paths.

Design constraints (this is the substrate every perf PR reports
through, so it must be boring and cheap):

* **Dependency-free** — stdlib only, importable from every layer
  (format parser, pool, algorithms) without cycles.
* **Reservoir-free quantiles** — :class:`Histogram` is log-bucketed
  (multiplicative bucket width ``growth``), so p50/p95/p99 come from a
  fixed-size dict with a bounded relative error of ``growth - 1``
  regardless of how many values streamed through.  No sampling, no
  sorting, no unbounded memory.
* **Labels** — metrics take keyword labels
  (``counter("locate.requests", algorithm="knn")``); each label
  combination is its own time series, rendered as
  ``name{algorithm=knn}``.
* **Thread safety** — every mutation holds a per-metric lock and
  :meth:`MetricsRegistry.snapshot` copies the series tables under the
  registry lock, so concurrent ``inc``/``observe``/``snapshot`` from
  worker threads never lose updates or trip mid-iteration mutations.
* **Mergeable state** — :meth:`MetricsRegistry.dump_state` is a plain
  picklable dict and :meth:`MetricsRegistry.merge` folds one registry's
  delta into another (counters sum, gauges last-write, histograms merge
  bucket-wise).  This is how metrics emitted inside
  :mod:`repro.parallel` worker processes reach the parent registry.
* **A process-global default registry** — instrumented library code
  emits into it unconditionally; tests grab :func:`snapshot` and call
  :func:`reset` around themselves.  :func:`set_enabled` (False) swaps
  every lookup for shared no-op metrics, which is how the overhead
  bench isolates instrumentation cost.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "set_registry",
    "set_enabled",
    "enabled",
    "snapshot",
    "reset",
    "merge_state",
    "split_series",
]


def _series_name(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_series(series: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Invert :func:`_series_name`: ``"x{a=1,b=2}"`` → ``("x", (("a","1"),("b","2")))``.

    The shared parser behind deterministic rendering and the exporters:
    sorting series by this key orders them by base name first, then by
    the label tuple, independent of how the snapshot dict was built.
    """
    if not series.endswith("}"):
        return series, ()
    name, _, inner = series[:-1].partition("{")
    labels = []
    for part in inner.split(","):
        key, _, value = part.partition("=")
        labels.append((key, value))
    return name, tuple(labels)


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (worker counts, database sizes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self.value -= n


class Histogram:
    """Streaming log-bucketed histogram with bounded-error quantiles.

    Positive values land in bucket ``floor(log(v) / log(growth))``; a
    quantile answer is the geometric midpoint of its bucket, so the
    relative error is at most ``growth - 1`` (4 % by default).  Zero
    and negative values (legal for e.g. dB deltas) are counted in a
    single underflow bucket pinned to the exact minimum seen.

    Two histograms with the same ``growth`` share a bucket grid, so
    :meth:`merge_state` is exact: bucket counts add, min/max take the
    extreme, and every quantile of the merged histogram is what a
    single histogram fed both streams would have answered.
    """

    __slots__ = ("name", "growth", "_log_growth", "count", "total", "min", "max",
                 "_buckets", "_nonpositive", "_exemplars", "_lock")

    #: At most this many buckets carry an exemplar (bounded memory).
    MAX_EXEMPLAR_BUCKETS = 64

    def __init__(self, name: str, growth: float = 1.04):
        if growth <= 1.0:
            raise ValueError(f"histogram growth must be > 1, got {growth}")
        self.name = name
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: Dict[int, int] = {}
        self._nonpositive = 0
        self._exemplars: Dict[int, Tuple[float, str, float]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, trace_id: Optional[str] = None) -> None:
        """Record one value; optionally tag its bucket with an exemplar.

        An exemplar is ``(value, trace_id, unix_ts)`` — a sample request
        id living in the bucket the observation landed in, so a scraper
        reading the OpenMetrics exposition can jump from "the p99 bucket
        grew" straight to a concrete trace in the flight recorder.
        Last write per bucket wins; at most ``MAX_EXEMPLAR_BUCKETS``
        buckets hold one.
        """
        value = float(value)
        with self._lock:
            self._observe_locked(value)
            if trace_id and value > 0.0:
                idx = int(math.floor(math.log(value) / self._log_growth))
                if idx in self._exemplars or len(self._exemplars) < self.MAX_EXEMPLAR_BUCKETS:
                    self._exemplars[idx] = (value, str(trace_id), time.time())

    def observe_many(self, values: Iterable[float]) -> None:
        """Observe a whole batch under one lock acquisition.

        The batched ``locate_many`` paths record one value per request;
        taking the lock once per batch keeps the per-request cost to a
        few arithmetic operations.
        """
        with self._lock:
            for value in values:
                self._observe_locked(float(value))

    def _observe_locked(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._nonpositive += 1
            return
        idx = int(math.floor(math.log(value) / self._log_growth))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 <= q <= 1) of everything observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        with self._lock:
            target = q * self.count
            seen = self._nonpositive
            if seen >= target and self._nonpositive:
                return self.min  # inside the underflow bucket
            for idx in sorted(self._buckets):
                seen += self._buckets[idx]
                if seen >= target:
                    # geometric midpoint of [growth^idx, growth^(idx+1))
                    mid = math.exp((idx + 0.5) * self._log_growth)
                    return min(max(mid, self.min), self.max)
            return self.max

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # -- portable state (cross-process merge) ---------------------------
    def dump_state(self) -> Dict[str, object]:
        """Full picklable state — everything a merge needs, unlike
        :meth:`summary` which collapses buckets into quantile answers."""
        with self._lock:
            state: Dict[str, object] = {
                "growth": self.growth,
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "nonpositive": self._nonpositive,
                "buckets": dict(self._buckets),
            }
            if self._exemplars:
                state["exemplars"] = {k: list(v) for k, v in self._exemplars.items()}
            return state

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`dump_state` into this one.

        Bucket-wise and exact for same-``growth`` histograms; merging is
        commutative and associative (counts add, extremes take the
        extreme), so a parent folding worker deltas in any order answers
        exactly what one histogram fed every stream would.
        """
        growth = float(state.get("growth", self.growth))
        if abs(growth - self.growth) > 1e-12:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: growth {growth} != {self.growth}"
            )
        with self._lock:
            self.count += int(state["count"])
            self.total += float(state["total"])
            self.min = min(self.min, float(state["min"]))
            self.max = max(self.max, float(state["max"]))
            self._nonpositive += int(state.get("nonpositive", 0))
            for idx, n in state.get("buckets", {}).items():
                idx = int(idx)  # JSON round trips turn keys into strings
                self._buckets[idx] = self._buckets.get(idx, 0) + int(n)
            for idx, ex in state.get("exemplars", {}).items():
                idx = int(idx)
                incoming = (float(ex[0]), str(ex[1]), float(ex[2]))
                held = self._exemplars.get(idx)
                # newest exemplar per bucket wins across merges
                if held is None or incoming[2] >= held[2]:
                    if idx in self._exemplars or len(self._exemplars) < self.MAX_EXEMPLAR_BUCKETS:
                        self._exemplars[idx] = incoming


class _NullMetric:
    """Shared sink used while the subsystem is disabled."""

    name = "<disabled>"
    value = 0

    def inc(self, n=1):  # noqa: D102 - deliberate no-ops
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value, trace_id=None):
        pass

    def observe_many(self, values):
        pass


_NULL = _NullMetric()


class MetricsRegistry:
    """A namespace of named metrics; creation is thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- lookup-or-create ------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = _series_name(name, labels)
        m = self._counters.get(key)
        if m is None:
            with self._lock:
                m = self._counters.setdefault(key, Counter(key))
        return m

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _series_name(name, labels)
        m = self._gauges.get(key)
        if m is None:
            with self._lock:
                m = self._gauges.setdefault(key, Gauge(key))
        return m

    def histogram(self, name: str, growth: float = 1.04, **labels: str) -> Histogram:
        key = _series_name(name, labels)
        m = self._histograms.get(key)
        if m is None:
            with self._lock:
                m = self._histograms.setdefault(key, Histogram(key, growth=growth))
        return m

    # -- reading ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable view of every series (stable key order)."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {k: c.value for k, c in sorted(counters)},
            "gauges": {k: g.value for k, g in sorted(gauges)},
            "histograms": {k: h.summary() for k, h in sorted(histograms)},
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- cross-process aggregation ---------------------------------------
    def dump_state(self) -> Dict[str, Dict[str, object]]:
        """Complete picklable registry state for :meth:`merge`.

        Unlike :meth:`snapshot` (which summarizes histograms into
        quantile answers), the dumped state carries full histogram
        buckets, so a merge is exact.  The dict is JSON-safe apart from
        histogram bucket keys, which JSON will stringify; :meth:`merge`
        accepts both forms.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {k: c.value for k, c in counters},
            "gauges": {k: g.value for k, g in gauges},
            "histograms": {k: h.dump_state() for k, h in histograms},
        }

    def merge(self, other: "MetricsRegistry | Dict[str, Dict[str, object]]") -> "MetricsRegistry":
        """Fold another registry (or a :meth:`dump_state` dict) into this one.

        Counters sum, gauges are last-write (the incoming value wins),
        histograms merge bucket-wise.  This is the parent side of
        cross-process aggregation: every worker returns its delta state
        and the parent merges them all, so sharded and serial runs
        report identical totals.  Returns ``self`` for chaining.
        """
        state = other.dump_state() if isinstance(other, MetricsRegistry) else other
        for key, value in state.get("counters", {}).items():
            m = self._counters.get(key)
            if m is None:
                with self._lock:
                    m = self._counters.setdefault(key, Counter(key))
            m.inc(int(value))
        for key, value in state.get("gauges", {}).items():
            m = self._gauges.get(key)
            if m is None:
                with self._lock:
                    m = self._gauges.setdefault(key, Gauge(key))
            m.set(float(value))
        for key, hstate in state.get("histograms", {}).items():
            m = self._histograms.get(key)
            if m is None:
                with self._lock:
                    m = self._histograms.setdefault(
                        key, Histogram(key, growth=float(hstate.get("growth", 1.04)))
                    )
            m.merge_state(hstate)
        return self


# ----------------------------------------------------------------------
# process-global default registry
# ----------------------------------------------------------------------
_default = MetricsRegistry()
_enabled = True


def get_registry() -> MetricsRegistry:
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one (for tests)."""
    global _default
    previous, _default = _default, registry
    return previous


def set_enabled(enabled: bool) -> bool:
    """Globally enable/disable emission; returns the previous state."""
    global _enabled
    previous, _enabled = _enabled, bool(enabled)
    return previous


def enabled() -> bool:
    """Whether metric emission is currently on (see :func:`set_enabled`)."""
    return _enabled


def counter(name: str, **labels: str):
    return _default.counter(name, **labels) if _enabled else _NULL


def gauge(name: str, **labels: str):
    return _default.gauge(name, **labels) if _enabled else _NULL


def histogram(name: str, **labels: str):
    return _default.histogram(name, **labels) if _enabled else _NULL


def snapshot() -> Dict[str, Dict[str, object]]:
    return _default.snapshot()


def reset() -> None:
    _default.reset()


def merge_state(state: Dict[str, Dict[str, object]]) -> None:
    """Fold a worker's :meth:`MetricsRegistry.dump_state` into the default
    registry (no-op while emission is disabled)."""
    if _enabled and state:
        _default.merge(state)
