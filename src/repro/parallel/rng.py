"""Reproducible random-number-generator management.

Every stochastic component in :mod:`repro` accepts either a seed or a
ready-made :class:`numpy.random.Generator`.  Parallel sweeps need many
*independent* streams derived from a single user seed; NumPy's
:class:`~numpy.random.SeedSequence` spawning is the supported way to get
them without stream collisions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def resolve_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS-entropy generator), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged, so callers can thread one generator through a pipeline).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def spawn_seeds(seed: Union[int, np.random.SeedSequence, None], n: int) -> List[np.random.SeedSequence]:
    """Spawn ``n`` independent child :class:`~numpy.random.SeedSequence`.

    The children are statistically independent regardless of ``n`` and can
    be shipped to worker processes cheaply (they pickle to a few bytes).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return list(root.spawn(n))


def spawn_rngs(seed: Union[int, np.random.SeedSequence, None], n: int) -> List[np.random.Generator]:
    """Spawn ``n`` independent generators from one seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def stable_seed(*parts: Union[int, str, float]) -> int:
    """Derive a deterministic 63-bit seed from a tuple of labels.

    Used to give every (experiment, parameter, repetition) cell its own
    stream without the caller manually bookkeeping seed offsets: the same
    labels always map to the same seed, on every platform.
    """
    import hashlib

    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def split_rng(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Split an existing generator into ``n`` independent children.

    Unlike :func:`spawn_rngs` this works from a live generator (the parent
    is advanced once to derive the children's entropy).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    entropy = rng.integers(0, 2**63 - 1, size=4, dtype=np.int64)
    root = np.random.SeedSequence([int(v) for v in entropy])
    return [np.random.default_rng(s) for s in root.spawn(n)]


def check_independence(seeds: Sequence[np.random.SeedSequence]) -> bool:
    """Sanity-check that spawned seed sequences have distinct spawn keys."""
    keys = {tuple(s.spawn_key) for s in seeds}
    return len(keys) == len(seeds)
