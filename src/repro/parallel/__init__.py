"""Parallel-execution utilities used by the experiment harness.

The sweeps in :mod:`repro.experiments.sweeps` evaluate many independent
(seed, parameter) cells.  This package provides the two pieces needed to
do that reproducibly and fast:

* :func:`repro.parallel.rng.spawn_rngs` — derive independent, collision
  free child generators from one seed via :class:`numpy.random.SeedSequence`.
* :func:`repro.parallel.pool.parallel_map` — a chunked process-pool map
  that degrades gracefully to serial execution for tiny workloads (where
  fork+pickle overhead dominates) or when the platform lacks working
  multiprocessing.
"""

from repro.parallel.pool import ParallelConfig, parallel_map, parallel_starmap
from repro.parallel.rng import resolve_rng, spawn_rngs, spawn_seeds

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "parallel_starmap",
    "resolve_rng",
    "spawn_rngs",
    "spawn_seeds",
]
