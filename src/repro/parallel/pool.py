"""Chunked process-pool map for embarrassingly parallel sweeps.

Design notes (per the hpc-parallel guides):

* *Measure before parallelizing* — a fork + pickle round trip costs
  milliseconds, so tiny workloads run serially; the threshold is explicit
  in :class:`ParallelConfig` rather than hidden.
* *Chunking* — work items are shipped in contiguous chunks to amortize
  IPC overhead; results are re-flattened in submission order so callers
  see an ordinary ordered ``map``.
* *Determinism* — callers pass pure functions of their arguments; any
  randomness must arrive through explicit seeds (see
  :mod:`repro.parallel.rng`), never through process-local global state.
* *Telemetry round trip* — metrics emitted inside worker processes
  would otherwise vanish with the worker, so each chunk runs against a
  fresh worker-local registry and ships its delta state back with the
  results; the parent folds every delta into its own registry
  (counters sum, histograms merge bucket-wise).  Sharded and serial
  runs therefore report identical totals.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro import obs


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs controlling :func:`parallel_map`.

    Attributes
    ----------
    max_workers:
        Worker-process count.  ``None`` means ``os.cpu_count()``; ``0`` or
        ``1`` forces serial execution (useful inside pytest-benchmark
        timing loops where fork noise would pollute measurements).
    chunk_size:
        Items shipped per IPC message.  ``None`` picks
        ``ceil(n_items / (4 * workers))`` so each worker gets ~4 chunks —
        enough to balance stragglers without drowning in pickling.
    serial_threshold:
        Below this many items the map always runs serially.
    """

    max_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    serial_threshold: int = 4

    def resolved_workers(self) -> int:
        if self.max_workers is not None:
            return max(0, self.max_workers)
        return os.cpu_count() or 1

    def resolved_chunk_size(self, n_items: int, workers: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        if workers <= 0:
            return max(1, n_items)
        return max(1, -(-n_items // (4 * workers)))


def _apply_chunk(
    func: Callable[[Any], Any], chunk: Sequence[Any], collect: bool = False
) -> Tuple[List[Any], Optional[dict]]:
    """Run one chunk in a worker; optionally capture its metrics delta.

    With ``collect`` the worker swaps a fresh registry in around the
    chunk, so the returned state holds exactly what *this chunk*
    emitted — re-used pool workers never leak one chunk's counts into
    another's delta, and the parent can fold every delta in without
    double-counting.
    """
    if not collect:
        return [func(item) for item in chunk], None
    from repro.obs import metrics as _metrics

    delta = _metrics.MetricsRegistry()
    previous = _metrics.set_registry(delta)
    try:
        results = [func(item) for item in chunk]
    finally:
        _metrics.set_registry(previous)
    return results, delta.dump_state()


def _star_apply_chunk(
    func: Callable[..., Any], chunk: Sequence[Tuple], collect: bool = False
) -> Tuple[List[Any], Optional[dict]]:
    if not collect:
        return [func(*args) for args in chunk], None
    from repro.obs import metrics as _metrics

    delta = _metrics.MetricsRegistry()
    previous = _metrics.set_registry(delta)
    try:
        results = [func(*args) for args in chunk]
    finally:
        _metrics.set_registry(previous)
    return results, delta.dump_state()


def _fold_deltas(kind: str, pairs: Sequence[Tuple[List[Any], Optional[dict]]]) -> List[Any]:
    """Merge worker registry deltas into the parent registry, in order.

    Counters sum and histograms merge bucket-wise, so a sharded run
    reports the same totals a serial run would; gauges are last-write
    in submission order (deterministic, matching serial emission
    order).  Returns the flattened, order-preserving results.
    """
    merged = 0
    for _, state in pairs:
        if state:
            obs.merge_state(state)
            merged += 1
    if merged:
        obs.counter("parallel.deltas_merged", kind=kind).inc(merged)
    return [result for results, _ in pairs for result in results]


def _chunked(items: Sequence[Any], size: int) -> List[Sequence[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _note_serial_fallback(kind: str, exc: BaseException) -> None:
    """A pool failed to start: run serially, but *visibly*.

    Sandboxes without fork/spawn are survivable, yet a sweep that
    quietly lost its parallelism looks identical to a fast one — so the
    degradation is both counted (``parallel.serial_fallback``) and
    warned once per occurrence.
    """
    obs.counter("parallel.serial_fallback", kind=kind).inc()
    warnings.warn(
        f"{kind}: process pool unavailable ({type(exc).__name__}: {exc}); "
        "falling back to serial execution",
        RuntimeWarning,
        stacklevel=3,
    )


def parallel_map(
    func: Callable[[Any], Any],
    items: Iterable[Any],
    config: Optional[ParallelConfig] = None,
) -> List[Any]:
    """Ordered parallel ``map(func, items)`` over a process pool.

    ``func`` must be picklable (module-level) when parallel execution
    kicks in; any exception raised in a worker propagates to the caller.
    Falls back to serial execution for small inputs, single-worker
    configs, or if the platform cannot start a process pool.
    """
    config = config or ParallelConfig()
    items = list(items)
    workers = config.resolved_workers()
    if len(items) < config.serial_threshold or workers <= 1:
        obs.counter("parallel.serial_small", kind="map").inc()
        return [func(item) for item in items]

    chunks = _chunked(items, config.resolved_chunk_size(len(items), workers))
    pool_workers = min(workers, len(chunks))
    obs.counter("parallel.maps", kind="map").inc()
    obs.counter("parallel.chunks", kind="map").inc(len(chunks))
    obs.gauge("parallel.workers").set(pool_workers)
    collect = obs.enabled()
    try:
        with obs.span("parallel.map", n_items=len(items), n_chunks=len(chunks)):
            with ProcessPoolExecutor(max_workers=pool_workers) as pool:
                pairs = list(
                    pool.map(
                        _apply_chunk,
                        [func] * len(chunks),
                        chunks,
                        [collect] * len(chunks),
                    )
                )
    except (OSError, PermissionError) as exc:  # sandboxes without fork/spawn
        _note_serial_fallback("parallel_map", exc)
        return [func(item) for item in items]
    return _fold_deltas("map", pairs)


def parallel_starmap(
    func: Callable[..., Any],
    argtuples: Iterable[Tuple],
    config: Optional[ParallelConfig] = None,
) -> List[Any]:
    """Ordered parallel ``itertools.starmap`` analogue of :func:`parallel_map`."""
    config = config or ParallelConfig()
    argtuples = [tuple(t) for t in argtuples]
    workers = config.resolved_workers()
    if len(argtuples) < config.serial_threshold or workers <= 1:
        obs.counter("parallel.serial_small", kind="starmap").inc()
        return [func(*args) for args in argtuples]

    chunks = _chunked(argtuples, config.resolved_chunk_size(len(argtuples), workers))
    pool_workers = min(workers, len(chunks))
    obs.counter("parallel.maps", kind="starmap").inc()
    obs.counter("parallel.chunks", kind="starmap").inc(len(chunks))
    obs.gauge("parallel.workers").set(pool_workers)
    collect = obs.enabled()
    try:
        with obs.span("parallel.starmap", n_items=len(argtuples), n_chunks=len(chunks)):
            with ProcessPoolExecutor(max_workers=pool_workers) as pool:
                pairs = list(
                    pool.map(
                        _star_apply_chunk,
                        [func] * len(chunks),
                        chunks,
                        [collect] * len(chunks),
                    )
                )
    except (OSError, PermissionError) as exc:
        _note_serial_fallback("parallel_starmap", exc)
        return [func(*args) for args in argtuples]
    return _fold_deltas("starmap", pairs)
