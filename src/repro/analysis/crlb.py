"""Cramér–Rao lower bounds for RSSI localization.

Under the log-distance model, one AP's mean observation at client
position **x** is ``μ_i(x) = P₀ − 10·n·log₁₀‖x − a_i‖`` with Gaussian
perturbation of variance σ².  The Fisher information a position
estimator can extract is

.. math::

    J(x) = \\frac{K}{σ²} \\sum_i g_i g_i^T,\\qquad
    g_i = \\left(\\frac{10 n}{\\ln 10}\\right) \\frac{x − a_i}{‖x − a_i‖²}

for ``K`` independent samples per AP, and any unbiased estimator's
position RMSE obeys ``RMSE ≥ √(tr J⁻¹)``.

The physically interesting part is **what counts as σ**:

* For a *ranging* estimator (the §5.2 geometric approach), the frozen
  shadowing is unmodelled noise: ``σ² = σ_shadow² + σ_temporal²/K_eff``.
* A *fingerprinting* estimator spends Phase 1 learning the shadowing
  field, converting it from noise into signal — its effective σ is the
  temporal term alone, a much smaller number with a much tighter bound.

The EXT-CRLB bench plots both bounds against every measured algorithm:
ranging methods are held above the shadowing-inclusive bound, while
fingerprinting methods *cross below it* — quantitative proof that the
two families are not playing the same estimation game, which is the
cleanest explanation of the paper's own §5 result pair.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.geometry import Point

_LN10 = math.log(10.0)


def ranging_crlb_ft(
    distance_ft: Union[float, np.ndarray],
    sigma_db: float,
    exponent: float,
    n_samples: int = 1,
) -> np.ndarray:
    """CRLB on a *single-AP distance* estimate (the ranging subproblem).

    ``std(d̂) ≥ (ln10/(10n)) · (σ/√K) · d`` — the error is a fixed
    fraction of the distance, which is why RSSI ranging collapses at
    warehouse scale (bench GEN-SITES).
    """
    if sigma_db <= 0 or exponent <= 0:
        raise ValueError("sigma and exponent must be positive")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    d = np.asarray(distance_ft, dtype=float)
    return (_LN10 / (10.0 * exponent)) * (sigma_db / math.sqrt(n_samples)) * d


def fisher_information(
    position,
    ap_positions: Sequence[Point],
    sigma_db: float,
    exponent: float,
    n_samples: int = 1,
) -> np.ndarray:
    """The 2×2 position Fisher information matrix at ``position``."""
    if sigma_db <= 0 or exponent <= 0:
        raise ValueError("sigma and exponent must be positive")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if len(ap_positions) < 1:
        raise ValueError("need at least one AP")
    x = np.asarray(tuple(position), dtype=float)
    scale = 10.0 * exponent / _LN10
    J = np.zeros((2, 2))
    for ap in ap_positions:
        diff = x - np.array([ap.x, ap.y])
        d2 = float(diff @ diff)
        if d2 < 1e-12:
            continue  # standing on the AP: that AP's gradient is undefined
        g = scale * diff / d2
        J += np.outer(g, g)
    return (n_samples / sigma_db**2) * J


def crlb_position_rmse(
    position,
    ap_positions: Sequence[Point],
    sigma_db: float,
    exponent: float,
    n_samples: int = 1,
) -> float:
    """Lower bound on position RMSE (ft) for an unbiased estimator.

    ``√(tr J⁻¹)``; returns ``inf`` when the geometry is degenerate
    (fewer than two non-collinear gradient directions).
    """
    J = fisher_information(position, ap_positions, sigma_db, exponent, n_samples)
    if np.linalg.matrix_rank(J) < 2:
        return float("inf")
    return float(np.sqrt(np.trace(np.linalg.inv(J))))


def crlb_field(
    positions: np.ndarray,
    ap_positions: Sequence[Point],
    sigma_db: float,
    exponent: float,
    n_samples: int = 1,
) -> np.ndarray:
    """Vector of per-position CRLB RMSEs (ft) over an (n, 2) array."""
    pos = np.atleast_2d(np.asarray(positions, dtype=float))
    return np.array(
        [
            crlb_position_rmse(Point(p[0], p[1]), ap_positions, sigma_db, exponent, n_samples)
            for p in pos
        ]
    )


def effective_samples(n_sweeps: int, interval_s: float, timescale_s: float) -> float:
    """Independent-sample equivalent of an AR(1)-correlated average.

    ``K_eff = K·(1−ρ)/(1+ρ)`` with ``ρ = exp(−Δt/τ)`` — the factor by
    which dwell averaging actually shrinks the temporal variance (far
    less than 1/K for slow fading).
    """
    if n_sweeps < 1:
        raise ValueError(f"n_sweeps must be >= 1, got {n_sweeps}")
    if interval_s <= 0 or timescale_s <= 0:
        raise ValueError("interval and timescale must be positive")
    rho = math.exp(-interval_s / timescale_s)
    return max(1.0, n_sweeps * (1.0 - rho) / (1.0 + rho))
