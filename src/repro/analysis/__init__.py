"""Theoretical analysis tools.

* :mod:`repro.analysis.crlb` — Cramér–Rao lower bounds for RSSI
  localization, the yardstick the EXT-CRLB bench measures every
  algorithm against.
"""

from repro.analysis.crlb import (
    crlb_position_rmse,
    fisher_information,
    ranging_crlb_ft,
)

__all__ = ["crlb_position_rmse", "fisher_information", "ranging_crlb_ft"]
