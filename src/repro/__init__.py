"""repro — "A Toolkit-Based Approach to Indoor Localization", reproduced.

A full reimplementation of Wang & Harder's 802.11 RSSI indoor-location
toolkit (ICPP 2006) with every substrate the paper leans on built from
scratch: a simulated indoor radio channel, the wi-scan survey file
format, a GIF codec for floor plans, the three toolkit programs (Floor
Plan Processor, Floor Plan Compositor, Training Database Generator),
the paper's probabilistic and geometric localizers, the baselines the
paper surveys (kNN/RADAR, histogram Bayes, multilateration, identifying
codes, scene analysis), and the future-work extensions (tracking
filters, UWB ranging).

Quick start::

    from repro import ExperimentHouse, run_protocol

    house = ExperimentHouse()          # the paper's 50x40 ft house
    result = run_protocol("probabilistic", house=house, rng=0)
    print(result.metrics.row("probabilistic"))

See README.md for the architecture tour, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured numbers.
"""

__version__ = "1.0.0"

from repro.algorithms import (
    FallbackLocalizer,
    FieldMLELocalizer,
    GeometricLocalizer,
    HistogramLocalizer,
    KNNLocalizer,
    LocationEstimate,
    Localizer,
    MultilaterationLocalizer,
    Observation,
    ProbabilisticLocalizer,
    RankLocalizer,
    SceneAnalysisLocalizer,
    SectorLocalizer,
    available_algorithms,
    make_localizer,
)
from repro.core import (
    EstimatePair,
    FloorPlan,
    FloorPlanCompositor,
    FloorPlanProcessor,
    LocalizationSystem,
    LocationMap,
    Mark,
    Point,
    TrainingDatabase,
    generate_training_db,
)
from repro.experiments import ExperimentHouse, HouseConfig, run_protocol
from repro.radio import AccessPoint, RadioEnvironment, SimulatedScanner, Wall
from repro.robustness import IngestReport
from repro.wiscan import CaptureSession, WiScanCollection

__all__ = [
    "__version__",
    # algorithms
    "FallbackLocalizer",
    "FieldMLELocalizer",
    "GeometricLocalizer",
    "HistogramLocalizer",
    "KNNLocalizer",
    "LocationEstimate",
    "Localizer",
    "MultilaterationLocalizer",
    "Observation",
    "ProbabilisticLocalizer",
    "RankLocalizer",
    "SceneAnalysisLocalizer",
    "SectorLocalizer",
    "available_algorithms",
    "make_localizer",
    # core toolkit
    "EstimatePair",
    "FloorPlan",
    "FloorPlanCompositor",
    "FloorPlanProcessor",
    "LocalizationSystem",
    "LocationMap",
    "Mark",
    "Point",
    "TrainingDatabase",
    "generate_training_db",
    # experiments
    "ExperimentHouse",
    "HouseConfig",
    "run_protocol",
    # substrates
    "AccessPoint",
    "RadioEnvironment",
    "SimulatedScanner",
    "Wall",
    "CaptureSession",
    "WiScanCollection",
    # robustness
    "IngestReport",
]
