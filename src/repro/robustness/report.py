"""Structured ingest diagnostics for wi-scan collections.

The paper (§4.3) insists the Training Database Generator "must
correctly deal with" arbitrary wi-scan collections.  Real surveys are
messy — half-written files, encoding accidents, truncated logs — so the
ingestion layer can run in a *lenient* mode that skips bad lines and
quarantines bad files instead of aborting the whole survey.  Whatever
it skipped must stay visible, though: :class:`IngestReport` is the
audit trail, carried on the resulting
:class:`~repro.wiscan.collection.WiScanCollection` as
``collection.ingest_report``.

This module depends only on :mod:`repro.obs` (itself stdlib-only), so
every layer of the toolkit (format parser, collection loader, CLI) can
import it without cycles.  Every tally recorded here is *also* emitted
as an ``ingest.*`` counter on the global metrics registry, so a
long-running service sees cumulative ingest health across collections
while each :class:`IngestReport` stays the per-ingest audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import obs


@dataclass(frozen=True)
class SkippedLine:
    """One unparseable line dropped during lenient parsing."""

    source: str
    line_no: int
    reason: str


@dataclass(frozen=True)
class QuarantinedSource:
    """One whole file excluded from the collection, with the cause."""

    source: str
    reason: str


@dataclass(frozen=True)
class HeaderConflict:
    """Two files for one location disagreed on a session header.

    The first-seen value is kept; ``dropped`` is the later value that
    lost, ``source`` names the file that carried it.
    """

    location: str
    key: str
    kept: str
    dropped: str
    source: str


@dataclass
class IngestReport:
    """Everything the ingestion layer read, kept, skipped and dropped."""

    lenient: bool = False
    files_read: int = 0
    records_kept: int = 0
    skipped_lines: List[SkippedLine] = field(default_factory=list)
    quarantined: List[QuarantinedSource] = field(default_factory=list)
    conflicts: List[HeaderConflict] = field(default_factory=list)

    # ------------------------------------------------------------------
    # recording (called by the parser / collection layers)
    # ------------------------------------------------------------------
    def count_file(self, n: int = 1) -> None:
        self.files_read += n
        obs.counter("ingest.files_read").inc(n)

    def count_records(self, n: int) -> None:
        self.records_kept += n
        obs.counter("ingest.records_kept").inc(n)

    def skip_line(self, source: str, line_no: int, reason: str) -> None:
        self.skipped_lines.append(SkippedLine(source, line_no, reason))
        obs.counter("ingest.skipped_lines").inc()

    def quarantine(self, source: str, reason: str) -> None:
        self.quarantined.append(QuarantinedSource(source, reason))
        obs.counter("ingest.quarantined").inc()
        # A quarantined survey file is a data-quality incident, not
        # just an ingest statistic: surface it on the alert series the
        # health endpoint and make_report.py watch.
        obs.counter("quality.alert", kind="ingest_quarantine").inc()

    def conflict(self, location: str, key: str, kept: str, dropped: str, source: str) -> None:
        self.conflicts.append(HeaderConflict(location, key, kept, dropped, source))
        obs.counter("ingest.header_conflicts").inc()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        """True when nothing at all was skipped, dropped or quarantined."""
        return not (self.skipped_lines or self.quarantined or self.conflicts)

    def quarantined_sources(self) -> List[str]:
        return [q.source for q in self.quarantined]

    def summary(self) -> str:
        """Human-readable multi-line account of the ingest."""
        mode = "lenient" if self.lenient else "strict"
        lines = [
            f"ingest ({mode}): {self.files_read} file(s) read, "
            f"{self.records_kept} record(s) kept, "
            f"{len(self.skipped_lines)} line(s) skipped, "
            f"{len(self.quarantined)} file(s) quarantined, "
            f"{len(self.conflicts)} header conflict(s)"
        ]
        for q in self.quarantined:
            lines.append(f"  quarantined {q.source}: {q.reason}")
        for s in self.skipped_lines:
            lines.append(f"  skipped {s.source}:{s.line_no}: {s.reason}")
        for c in self.conflicts:
            lines.append(
                f"  conflict at {c.location!r} header {c.key!r}: "
                f"kept {c.kept!r}, dropped {c.dropped!r} from {c.source}"
            )
        return "\n".join(lines)
