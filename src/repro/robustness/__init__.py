"""Fault tolerance: lenient ingestion reports and fault injection.

Two halves of one concern — §4.3's "must correctly deal with" arbitrary
survey collections, and §5.1's observation that invalid estimates are a
third of production traffic:

* :mod:`repro.robustness.report` — the :class:`IngestReport` audit
  trail produced by lenient wi-scan ingestion (skipped lines,
  quarantined files, header conflicts);
* :mod:`repro.robustness.injectors` — composable fault injectors
  (AP dropout, noise bursts, record corruption, truncation) that wrap
  the scanner and survey layers for controlled-degradation benchmarks.

The injector names are re-exported lazily: the injectors module imports
the scanner/wiscan layers, which themselves import
:mod:`repro.robustness.report`, and eager re-export would close that
loop into an import cycle.
"""

from repro.robustness.report import (
    HeaderConflict,
    IngestReport,
    QuarantinedSource,
    SkippedLine,
)

_INJECTOR_NAMES = (
    "Injector",
    "APDropout",
    "NoiseBurst",
    "RecordCorruption",
    "FileTruncation",
    "MagicCorruption",
    "FaultyScanner",
    "inject_observation",
    "corrupt_survey_texts",
    "write_corrupted_survey",
)

__all__ = [
    "IngestReport",
    "SkippedLine",
    "QuarantinedSource",
    "HeaderConflict",
    *_INJECTOR_NAMES,
]


def __getattr__(name):
    if name in _INJECTOR_NAMES:
        from repro.robustness import injectors

        return getattr(injectors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
