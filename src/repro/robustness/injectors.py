"""Composable fault injectors for controlled-degradation experiments.

§5.1 of the paper reports that only 60 % of observations produce a
valid estimate — degradation is the *normal* operating regime of an
RSSI system, not an edge case.  These injectors manufacture that regime
on demand so tests and benchmarks can measure validity rate and
deviation under known faults:

* **sweep-level** faults (:class:`APDropout`, :class:`NoiseBurst`)
  perturb live scan output; wrap a scanner in :class:`FaultyScanner`
  and every downstream consumer (:class:`~repro.wiscan.capture.CaptureSession`,
  surveys, observations) sees the degraded radio;
* **text-level** faults (:class:`RecordCorruption`,
  :class:`FileTruncation`, :class:`MagicCorruption`) mangle rendered
  wi-scan files, exercising the lenient-ingestion path;
* :func:`write_corrupted_survey` applies text faults to a fraction of a
  survey's files on disk — the standard fixture for ingest-robustness
  tests.

Every injector exposes up to three hooks — ``sweeps``, ``observation``,
``text`` — defaulting to pass-through, so heterogeneous injectors
compose by simple sequential application.  All randomness flows through
an explicit ``rng`` so every fault pattern is reproducible.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.rng import RngLike, resolve_rng
from repro.radio.scanner import ScanSweep, SimulatedScanner


class Injector:
    """Base fault injector: every hook defaults to pass-through."""

    def sweeps(self, sweeps: List[ScanSweep], rng) -> List[ScanSweep]:
        return sweeps

    def observation(self, observation, rng):
        return observation

    def text(self, text: str, rng) -> str:
        return text


class APDropout(Injector):
    """Silence access points: named BSSIDs and/or ``k`` random ones.

    Models a powered-off or newly-shadowed AP.  Random victims are
    drawn once per application from the set actually present, so one
    call degrades one session coherently (the AP is *gone*, not
    flickering — flicker is :class:`NoiseBurst`'s regime).
    """

    def __init__(self, bssids: Sequence[str] = (), k: int = 0):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.bssids = tuple(b.lower() for b in bssids)
        self.k = int(k)

    def _victims(self, present: Sequence[str], rng) -> set:
        victims = {b for b in self.bssids if b in present}
        candidates = [b for b in present if b not in victims]
        if self.k and candidates:
            n = min(self.k, len(candidates))
            picked = rng.choice(len(candidates), size=n, replace=False)
            victims.update(candidates[int(i)] for i in np.atleast_1d(picked))
        return victims

    def sweeps(self, sweeps: List[ScanSweep], rng) -> List[ScanSweep]:
        present = sorted({r.bssid for sw in sweeps for r in sw.readings})
        victims = self._victims(present, rng)
        if not victims:
            return sweeps
        return [
            ScanSweep(
                timestamp_s=sw.timestamp_s,
                readings=tuple(r for r in sw.readings if r.bssid not in victims),
            )
            for sw in sweeps
        ]

    def observation(self, observation, rng):
        from repro.algorithms.base import Observation

        if observation.bssids:
            present = [b for j, b in enumerate(observation.bssids)
                       if np.isfinite(observation.samples[:, j]).any()]
            victims = self._victims(present, rng)
            cols = [j for j, b in enumerate(observation.bssids) if b in victims]
        else:
            if self.bssids:
                raise ValueError(
                    "observation carries no BSSIDs; APDropout by name needs them"
                )
            heard = [j for j in range(observation.n_aps)
                     if np.isfinite(observation.samples[:, j]).any()]
            n = min(self.k, len(heard))
            picked = rng.choice(len(heard), size=n, replace=False) if n else []
            cols = [heard[int(i)] for i in np.atleast_1d(picked)] if n else []
        if not cols:
            return observation
        samples = observation.samples.copy()
        samples[:, cols] = np.nan
        return Observation(samples, bssids=observation.bssids)


class NoiseBurst(Injector):
    """Random RSSI noise bursts: each reading is hit with probability
    ``prob`` by a zero-mean Gaussian of ``sigma_db``, clipped to the
    plausible dBm range.  Models multipath flutter and interference.
    """

    def __init__(self, sigma_db: float = 8.0, prob: float = 0.15):
        if sigma_db < 0:
            raise ValueError(f"sigma_db must be non-negative, got {sigma_db}")
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {prob}")
        self.sigma_db = float(sigma_db)
        self.prob = float(prob)

    def sweeps(self, sweeps: List[ScanSweep], rng) -> List[ScanSweep]:
        from dataclasses import replace

        out = []
        for sw in sweeps:
            readings = []
            for r in sw.readings:
                if rng.random() < self.prob:
                    rssi = float(np.clip(r.rssi_dbm + rng.normal(0.0, self.sigma_db), -120.0, 0.0))
                    r = replace(r, rssi_dbm=rssi)
                readings.append(r)
            out.append(ScanSweep(timestamp_s=sw.timestamp_s, readings=tuple(readings)))
        return out

    def observation(self, observation, rng):
        from repro.algorithms.base import Observation

        samples = observation.samples.copy()
        finite = np.isfinite(samples)
        hit = finite & (rng.random(samples.shape) < self.prob)
        noise = rng.normal(0.0, self.sigma_db, samples.shape)
        samples[hit] = np.clip(samples[hit] + noise[hit], -120.0, 0.0)
        return Observation(samples, bssids=observation.bssids)


class RecordCorruption(Injector):
    """Mangle a fraction of a wi-scan file's data lines.

    Each non-header line is, with probability ``rate``, replaced by one
    of the corruptions real logs exhibit: a dropped field, an
    out-of-range RSSI, or plain garbage.  Strict parsing dies on the
    first such line; lenient parsing skips them and reports each one.
    """

    def __init__(self, rate: float = 0.1):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = float(rate)

    def text(self, text: str, rng) -> str:
        out = []
        for line in text.splitlines():
            if line.strip() and not line.lstrip().startswith("#") and rng.random() < self.rate:
                mode = int(rng.integers(0, 3))
                if mode == 0:  # drop the last field
                    line = "\t".join(line.split("\t")[:-1])
                elif mode == 1:  # implausible RSSI
                    parts = line.split("\t")
                    parts[-1] = "+999.0"
                    line = "\t".join(parts)
                else:  # garbage bytes
                    line = "\x00\x01corrupt" + line[: max(0, len(line) // 2)]
            out.append(line)
        return "\n".join(out) + "\n"


class FileTruncation(Injector):
    """Cut a file's tail, as a crashed logger or full disk would.

    Keeps the first ``keep_fraction`` of the text; the cut usually lands
    mid-line, leaving one malformed record at the new end of file.
    """

    def __init__(self, keep_fraction: float = 0.5):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        self.keep_fraction = float(keep_fraction)

    def text(self, text: str, rng) -> str:
        return text[: max(1, int(len(text) * self.keep_fraction))]


class MagicCorruption(Injector):
    """Destroy the magic line — a file-fatal fault.

    Models a file overwritten at its start (interrupted rsync, bad
    sector).  Such a file cannot be recovered line-by-line: even
    lenient ingestion must quarantine it whole.
    """

    def text(self, text: str, rng) -> str:
        lines = text.splitlines()
        if lines:
            lines[0] = "\x00GARBAGE" + lines[0][2:]
        return "\n".join(lines) + "\n"


class FaultyScanner:
    """A scanner wrapper that degrades every session it produces.

    Drop-in for :class:`~repro.radio.scanner.SimulatedScanner` wherever
    one is consumed (:class:`~repro.wiscan.capture.CaptureSession`,
    :meth:`ExperimentHouse.observe <repro.experiments.house.ExperimentHouse>`
    plumbing, …): ``scan_session``/``walk_session`` delegate to the
    wrapped scanner, then run every sweep-level injector in order.

    The fault RNG is separate from the radio RNG on purpose: the same
    survey seed yields the same clean radio whether or not faults are
    layered on top, so degraded runs are directly comparable to their
    clean baselines.
    """

    def __init__(
        self,
        scanner: SimulatedScanner,
        injectors: Sequence[Injector] = (),
        rng: RngLike = None,
    ):
        self.scanner = scanner
        self.injectors = tuple(injectors)
        self._fault_rng = resolve_rng(rng)

    @property
    def interval_s(self) -> float:
        return self.scanner.interval_s

    @property
    def environment(self):
        return self.scanner.environment

    def _inject(self, sweeps: List[ScanSweep]) -> List[ScanSweep]:
        for inj in self.injectors:
            sweeps = inj.sweeps(sweeps, self._fault_rng)
        return sweeps

    def scan_session(self, position, duration_s, rng: RngLike = None, start_time_s=0.0):
        sweeps = self.scanner.scan_session(
            position, duration_s, rng=rng, start_time_s=start_time_s
        )
        return self._inject(sweeps)

    def walk_session(self, waypoints, speed_ft_s: float = 3.0, rng: RngLike = None):
        out = self.scanner.walk_session(waypoints, speed_ft_s=speed_ft_s, rng=rng)
        positions = [p for p, _ in out]
        sweeps = self._inject([sw for _, sw in out])
        return list(zip(positions, sweeps))


def inject_observation(observation, injectors: Sequence[Injector], rng: RngLike = None):
    """Run an observation through every injector in order."""
    gen = resolve_rng(rng)
    for inj in injectors:
        observation = inj.observation(observation, gen)
    return observation


def corrupt_survey_texts(
    collection,
    injectors: Sequence[Injector],
    fraction: float = 0.2,
    rng: RngLike = None,
) -> Tuple[List[Tuple[str, str]], List[str]]:
    """Render a collection to wi-scan texts, corrupting a fraction of files.

    Returns ``(pairs, corrupted)``: ``pairs`` is ``(filename, text)``
    for every session (corrupted or not), ``corrupted`` the file names
    that received the text injectors.  ``ceil(fraction × n)`` victims
    are chosen at random, so ``fraction > 0`` always corrupts at least
    one file.
    """
    from repro.wiscan.collection import _safe_filename
    from repro.wiscan.format import render_wiscan

    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    gen = resolve_rng(rng)
    sessions = list(collection)
    n_bad = math.ceil(fraction * len(sessions)) if fraction > 0 else 0
    bad = set(gen.choice(len(sessions), size=n_bad, replace=False)) if n_bad else set()
    pairs: List[Tuple[str, str]] = []
    corrupted: List[str] = []
    for i, session in enumerate(sessions):
        name = f"{_safe_filename(session.location)}.wi-scan"
        text = render_wiscan(session)
        if i in bad:
            for inj in injectors:
                text = inj.text(text, gen)
            corrupted.append(name)
        pairs.append((name, text))
    return pairs, corrupted


def write_corrupted_survey(
    collection,
    directory,
    injectors: Sequence[Injector],
    fraction: float = 0.2,
    rng: RngLike = None,
) -> List[str]:
    """Write a survey to ``directory`` with a fraction of files corrupted.

    Returns the corrupted file names.  The standard fixture for
    lenient-ingestion tests: write, then ``WiScanCollection.load`` the
    directory in both modes.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    pairs, corrupted = corrupt_survey_texts(collection, injectors, fraction=fraction, rng=rng)
    for name, text in pairs:
        (root / name).write_text(text, encoding="utf-8")
    return corrupted
