"""AP placement optimization.

Given a floor, a wall layout and an AP budget, choose positions that
maximize fingerprinting quality.  Two objectives are offered:

* ``"damage"`` (default) — minimize the worst pairwise **expected
  damage** ``physical_distance(i, j) × P(confuse i with j)`` over *all*
  grid pairs.  This captures both local blur (neighbours hard to tell
  apart) and **distant aliasing** — two far-apart points with similar
  distance vectors, the failure mode symmetric interior placements
  create.  Empirically (bench EXT-PLAN) this is the objective that
  transfers to end-to-end accuracy.
* ``"separability"`` — maximize the minimum *neighbour* d′ (pairs
  within ``neighbor_radius_ft``).  Sharper local contrast, but blind to
  aliasing; kept as an ablation of the objective choice.

Optimization is the standard two-stage heuristic:

1. **Greedy forward selection** over a candidate lattice: place APs one
   at a time, each at the candidate that maximizes the objective given
   the APs placed so far (seeded with the best pair).
2. **Coordinate refinement**: cycle through the placed APs, re-seating
   each at its best candidate while the others stay fixed, until no
   move improves the objective.

Each candidate evaluation builds a throwaway environment that shares
the site's walls and channel parameters but *not* its shadowing draw —
placement must be judged on the deterministic geometry (path loss +
walls), since the installer cannot know the shadowing field in advance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import Point
from repro.planning.quality import fingerprint_separability
from repro.radio.environment import AccessPoint, RadioEnvironment, Wall
from repro.radio.fading import TemporalFading
from repro.radio.pathloss import LogDistanceModel


@dataclass(frozen=True)
class PlacementResult:
    """The optimizer's answer."""

    positions: List[Point]
    objective: float
    history: List[Tuple[int, float]] = field(default_factory=list)

    def as_access_points(self, name_prefix: str = "AP") -> List[AccessPoint]:
        return [
            AccessPoint(name=f"{name_prefix}{i + 1}", position=p)
            for i, p in enumerate(self.positions)
        ]


def _objective_factory(
    walls: Sequence[Wall],
    eval_points: np.ndarray,
    pathloss: LogDistanceModel,
    noise_std_db: float,
    neighbor_radius_ft: float,
    kind: str = "damage",
) -> Callable[[Sequence[Point]], float]:
    """Build a score-to-MAXIMIZE over candidate AP position lists."""
    from repro.planning.quality import expected_confusion

    diff = eval_points[:, None, :] - eval_points[None, :, :]
    physical = np.sqrt((diff**2).sum(axis=2))
    neighbor = (physical > 0) & (physical <= neighbor_radius_ft)
    if kind == "separability" and not neighbor.any():
        raise ValueError("no neighbour pairs among evaluation points")
    if kind not in ("damage", "separability"):
        raise ValueError(f"unknown objective {kind!r}; use 'damage' or 'separability'")

    def environment(ap_positions: Sequence[Point]) -> RadioEnvironment:
        return RadioEnvironment(
            [AccessPoint(name=f"c{i}", position=p) for i, p in enumerate(ap_positions)],
            walls=walls,
            pathloss=pathloss,
            shadowing_sigma_db=0.0,  # judge geometry, not one shadow draw
            fading=TemporalFading(sigma_db=noise_std_db, noise_db=0.0),
        )

    def objective(ap_positions: Sequence[Point]) -> float:
        dprime = fingerprint_separability(
            environment(ap_positions), eval_points, noise_std_db=noise_std_db
        )
        if kind == "separability":
            return float(dprime[neighbor].min())
        damage = physical * expected_confusion(dprime)
        return -float(damage.max())

    return objective


def _candidate_lattice(
    bounds: Tuple[float, float, float, float], spacing_ft: float, margin_ft: float
) -> List[Point]:
    x0, y0, x1, y1 = bounds
    xs = np.arange(x0 + margin_ft, x1 - margin_ft + 1e-9, spacing_ft)
    ys = np.arange(y0 + margin_ft, y1 - margin_ft + 1e-9, spacing_ft)
    if xs.size == 0 or ys.size == 0:
        raise ValueError(
            f"margin {margin_ft} ft leaves no candidates inside bounds {bounds}"
        )
    return [Point(float(x), float(y)) for y in ys for x in xs]


def optimize_placement(
    n_aps: int,
    bounds: Tuple[float, float, float, float],
    walls: Sequence[Wall] = (),
    eval_points: Optional[np.ndarray] = None,
    candidate_spacing_ft: float = 10.0,
    candidate_margin_ft: float = 0.0,
    noise_std_db: float = 4.0,
    neighbor_radius_ft: float = 15.0,
    pathloss: Optional[LogDistanceModel] = None,
    max_refine_passes: int = 3,
    objective: str = "damage",
) -> PlacementResult:
    """Choose ``n_aps`` positions optimizing fingerprint quality.

    Parameters
    ----------
    eval_points:
        ``(n, 2)`` grid the fingerprints are judged on; defaults to a
        10-ft lattice over the bounds (the §5 training grid).
    candidate_spacing_ft / candidate_margin_ft:
        AP candidate lattice granularity and keep-out from the walls.
    objective:
        ``"damage"`` (default: minimize worst pair distance×confusion,
        alias-aware) or ``"separability"`` (maximize min-neighbour d′) —
        see the module docstring for the trade-off.
    """
    if n_aps < 2:
        raise ValueError(f"need at least 2 APs for separability, got {n_aps}")
    x0, y0, x1, y1 = bounds
    if eval_points is None:
        gx, gy = np.meshgrid(
            np.arange(x0, x1 + 1e-9, 10.0), np.arange(y0, y1 + 1e-9, 10.0)
        )
        eval_points = np.column_stack([gx.ravel(), gy.ravel()])
    eval_points = np.atleast_2d(np.asarray(eval_points, dtype=float))

    candidates = _candidate_lattice(bounds, candidate_spacing_ft, candidate_margin_ft)
    score = _objective_factory(
        walls,
        eval_points,
        pathloss or LogDistanceModel(),
        noise_std_db,
        neighbor_radius_ft,
        kind=objective,
    )

    history: List[Tuple[int, float]] = []

    # Stage 1 — greedy forward selection.  The first AP alone has an
    # ill-defined objective (one AP rarely separates anything), so seed
    # with the best *pair* and grow from there.
    best_pair, best_val = None, -np.inf
    for i, a in enumerate(candidates):
        for b in candidates[i + 1 :]:
            val = score([a, b])
            if val > best_val:
                best_pair, best_val = (a, b), val
    greedy = list(best_pair)
    history.append((2, best_val))
    while len(greedy) < n_aps:
        best_c, best_val = None, -np.inf
        for c in candidates:
            if c in greedy:
                continue
            val = score(greedy + [c])
            if val > best_val:
                best_c, best_val = c, val
        greedy.append(best_c)
        history.append((len(greedy), best_val))

    def refine(start: List[Point]) -> Tuple[List[Point], float]:
        placed = list(start)
        current = score(placed)
        for _ in range(max_refine_passes):
            improved = False
            for k in range(len(placed)):
                best_c, best_val = placed[k], current
                others = placed[:k] + placed[k + 1 :]
                for c in candidates:
                    if c in others:
                        continue
                    val = score(others[:k] + [c] + others[k:])
                    if val > best_val + 1e-9:
                        best_c, best_val = c, val
                if best_c != placed[k]:
                    placed[k] = best_c
                    current = best_val
                    improved = True
            if not improved:
                break
        return placed, current

    # Stage 2 — coordinate refinement from multiple starts (the greedy
    # build plus the perimeter-corner heuristic): greedy construction is
    # myopic and can land in a basin the corners escape, and vice versa.
    starts: List[List[Point]] = [greedy]
    ring = corner_placement(bounds)
    if n_aps <= len(ring):
        starts.append(ring[:n_aps])
    best_placed, best_score = None, -np.inf
    for start in starts:
        placed, value = refine(start)
        if value > best_score:
            best_placed, best_score = placed, value
    history.append((len(best_placed), best_score))
    return PlacementResult(positions=best_placed, objective=best_score, history=history)


def corner_placement(bounds: Tuple[float, float, float, float]) -> List[Point]:
    """The paper's baseline: one AP at each corner."""
    x0, y0, x1, y1 = bounds
    return [Point(x0, y0), Point(x1, y0), Point(x1, y1), Point(x0, y1)]
