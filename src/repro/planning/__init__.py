"""Deployment-planning tools (the paper's §6.4 toolkit expansion).

The paper closes with "we will expand our location toolkit" — this
package is that expansion, covering the questions an installer faces
*before* the training survey:

* :mod:`repro.planning.coverage` — audibility and signal-quality maps
  over the floor: where does each AP reach, where do fewer than three
  APs reach (the geometric approach's dead zones)?
* :mod:`repro.planning.quality` — radio-map quality metrics for a
  candidate deployment: pairwise fingerprint separability, expected
  nearest-fingerprint confusion, and a scalar site score.
* :mod:`repro.planning.placement` — AP placement optimization: greedy
  forward selection from a candidate grid, maximizing fingerprint
  separability (with a local-refinement pass), so "put them at the four
  corners" can be tested against optimized layouts.
"""

from repro.planning.coverage import CoverageMap, audible_count_grid, coverage_map
from repro.planning.placement import PlacementResult, optimize_placement
from repro.planning.quality import SiteQuality, fingerprint_separability, site_quality

__all__ = [
    "CoverageMap",
    "audible_count_grid",
    "coverage_map",
    "PlacementResult",
    "optimize_placement",
    "SiteQuality",
    "fingerprint_separability",
    "site_quality",
]
