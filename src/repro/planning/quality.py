"""Radio-map quality: will fingerprinting work *here*?

Fingerprinting accuracy is set by how *separable* nearby locations'
signal signatures are relative to the channel's temporal noise.  These
metrics quantify that for a candidate deployment before anyone walks a
survey:

* :func:`fingerprint_separability` — for each pair of grid points, the
  signal-space distance between their mean fingerprints in units of the
  temporal noise σ (a d′-style detectability).  The binding constraint
  is the *nearest* pair, so the summary statistic is the minimum over
  neighbour pairs.
* :func:`expected_confusion` — a Gaussian approximation of the
  probability that one grid point's observation is attributed to
  another specific point (pairwise two-class error,
  ``Q(d′/2) = ½·erfc(d′/(2√2))``).
* :func:`site_quality` — the installer's one-line report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.special import erfc

from repro.radio.environment import RadioEnvironment


def _mean_fingerprints(environment: RadioEnvironment, positions: np.ndarray) -> np.ndarray:
    """(n, n_aps) frozen mean fingerprints, with inaudible APs clamped.

    Below-threshold cells are clamped *to* the threshold: in a real scan
    both points just report "not heard", so dB differences below the
    floor carry no separating information and must not be credited.
    """
    rssi = environment.mean_rssi(positions)
    return np.maximum(rssi, environment.detection_threshold_dbm)


def fingerprint_separability(
    environment: RadioEnvironment,
    positions: np.ndarray,
    noise_std_db: Optional[float] = None,
) -> np.ndarray:
    """Pairwise d′ matrix between candidate grid points.

    ``d′[i, j] = ||f_i − f_j||₂ / (σ·√2)`` where σ is the per-sample
    temporal noise (defaults to the environment's stationary fading σ).
    Shape ``(n, n)``, zero diagonal.
    """
    pos = np.atleast_2d(np.asarray(positions, dtype=float))
    sigma = float(noise_std_db if noise_std_db is not None else environment.fading.stationary_std())
    if sigma <= 0:
        raise ValueError(f"noise std must be positive, got {sigma}")
    fps = _mean_fingerprints(environment, pos)
    diff = fps[:, None, :] - fps[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    return dist / (sigma * np.sqrt(2.0))


def expected_confusion(dprime: np.ndarray) -> np.ndarray:
    """Pairwise two-class misattribution probability ``Q(d′/2)``."""
    d = np.asarray(dprime, dtype=float)
    out = 0.5 * erfc(d / (2.0 * np.sqrt(2.0)))
    np.fill_diagonal(out, 0.0)
    return out


@dataclass(frozen=True)
class SiteQuality:
    """One deployment's fingerprinting-quality report."""

    min_neighbor_dprime: float
    median_neighbor_dprime: float
    worst_pair: Tuple[int, int]
    max_pair_confusion: float
    mean_pair_confusion: float

    def summary(self) -> str:
        return (
            f"min neighbour d'={self.min_neighbor_dprime:.2f} "
            f"(median {self.median_neighbor_dprime:.2f}); "
            f"worst pair {self.worst_pair} confused with "
            f"p={self.max_pair_confusion:.3f}"
        )


def site_quality(
    environment: RadioEnvironment,
    positions: np.ndarray,
    neighbor_radius_ft: float = 15.0,
    noise_std_db: Optional[float] = None,
) -> SiteQuality:
    """Score a deployment over the given training grid.

    Only pairs within ``neighbor_radius_ft`` count as "neighbours" —
    confusing two points across the building is still an error, but the
    binding design constraint is always adjacent-cell confusion.
    """
    pos = np.atleast_2d(np.asarray(positions, dtype=float))
    if pos.shape[0] < 2:
        raise ValueError("site quality needs at least two grid points")
    dprime = fingerprint_separability(environment, pos, noise_std_db)
    confusion = expected_confusion(dprime)

    diff = pos[:, None, :] - pos[None, :, :]
    physical = np.sqrt((diff**2).sum(axis=2))
    neighbor = (physical > 0) & (physical <= neighbor_radius_ft)
    if not neighbor.any():
        raise ValueError(
            f"no point pairs within {neighbor_radius_ft} ft; widen the radius"
        )
    neighbor_d = dprime[neighbor]
    flat_idx = int(np.argmin(np.where(neighbor, dprime, np.inf)))
    worst = np.unravel_index(flat_idx, dprime.shape)
    return SiteQuality(
        min_neighbor_dprime=float(neighbor_d.min()),
        median_neighbor_dprime=float(np.median(neighbor_d)),
        worst_pair=(int(worst[0]), int(worst[1])),
        max_pair_confusion=float(confusion[neighbor].max()),
        mean_pair_confusion=float(confusion[neighbor].mean()),
    )
