"""Coverage analysis: who hears what, where.

Evaluates a :class:`~repro.radio.environment.RadioEnvironment` on a
dense floor grid and answers the installer's first questions: each AP's
audible footprint, the count of audible APs everywhere (the geometric
approach needs ≥ 3), and the weakest-strongest margins.  All grid
evaluations go through the environment's vectorized ``mean_rssi``, so a
1-ft-resolution map of the §5 house is a single broadcasted call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.radio.environment import RadioEnvironment


@dataclass(frozen=True)
class CoverageMap:
    """Gridded coverage products for one environment.

    Attributes
    ----------
    xs, ys:
        Grid axes in feet (``xs`` has shape ``(nx,)``, ``ys`` ``(ny,)``).
    mean_rssi:
        ``(ny, nx, n_aps)`` frozen mean RSSI (dBm).
    audible:
        ``(ny, nx, n_aps)`` boolean: above the detection threshold.
    """

    xs: np.ndarray
    ys: np.ndarray
    mean_rssi: np.ndarray
    audible: np.ndarray
    threshold_dbm: float

    @property
    def audible_count(self) -> np.ndarray:
        """``(ny, nx)`` count of audible APs per cell."""
        return self.audible.sum(axis=2)

    def fraction_covered(self, min_aps: int = 1) -> float:
        """Fraction of the floor hearing at least ``min_aps`` APs."""
        if min_aps < 1:
            raise ValueError(f"min_aps must be >= 1, got {min_aps}")
        return float((self.audible_count >= min_aps).mean())

    def dead_zones(self, min_aps: int = 3) -> List[Tuple[float, float]]:
        """Cell centers (ft) hearing fewer than ``min_aps`` APs."""
        bad_y, bad_x = np.nonzero(self.audible_count < min_aps)
        return [(float(self.xs[j]), float(self.ys[i])) for i, j in zip(bad_y, bad_x)]

    def strongest_ap(self) -> np.ndarray:
        """``(ny, nx)`` index of the loudest AP per cell (Voronoi-ish)."""
        return self.mean_rssi.argmax(axis=2)

    def rssi_of_ap(self, index: int) -> np.ndarray:
        """``(ny, nx)`` mean RSSI of one AP (for heatmap rendering)."""
        return self.mean_rssi[:, :, index]


def _grid(
    bounds: Tuple[float, float, float, float], resolution_ft: float
) -> Tuple[np.ndarray, np.ndarray]:
    x0, y0, x1, y1 = bounds
    if x0 >= x1 or y0 >= y1:
        raise ValueError(f"degenerate bounds {bounds}")
    if resolution_ft <= 0:
        raise ValueError(f"resolution must be positive, got {resolution_ft}")
    xs = np.arange(x0, x1 + resolution_ft / 2, resolution_ft)
    ys = np.arange(y0, y1 + resolution_ft / 2, resolution_ft)
    return xs, ys


def coverage_map(
    environment: RadioEnvironment,
    bounds: Tuple[float, float, float, float],
    resolution_ft: float = 1.0,
) -> CoverageMap:
    """Evaluate coverage over ``bounds`` at ``resolution_ft`` spacing."""
    xs, ys = _grid(bounds, resolution_ft)
    gx, gy = np.meshgrid(xs, ys)
    positions = np.column_stack([gx.ravel(), gy.ravel()])
    rssi = environment.mean_rssi(positions).reshape(ys.size, xs.size, len(environment.aps))
    return CoverageMap(
        xs=xs,
        ys=ys,
        mean_rssi=rssi,
        audible=rssi >= environment.detection_threshold_dbm,
        threshold_dbm=environment.detection_threshold_dbm,
    )


def audible_count_grid(
    environment: RadioEnvironment,
    bounds: Tuple[float, float, float, float],
    resolution_ft: float = 1.0,
) -> np.ndarray:
    """Shortcut: just the ``(ny, nx)`` audible-AP-count grid."""
    return coverage_map(environment, bounds, resolution_ft).audible_count
