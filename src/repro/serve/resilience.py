"""The serving layer's resilience substrate (stdlib only).

PR 5 built a fast happy path; this module is what keeps the service
*up* when the path stops being happy.  Production indoor localization
is a degraded-conditions system by nature — crowdsensed inputs, APs
that move or die, fleets where partial failure is the steady state —
so the serve path must shed load it cannot carry, stop paying for
dependencies that are wedged, and reject hopeless work early instead
of hanging on it.  Four cooperating pieces:

* :class:`CircuitBreaker` / :class:`TierBreakerBoard` — the classic
  closed → open → half-open state machine, one breaker per fallback
  tier.  A tier that keeps *raising* (not merely declining) trips its
  breaker and is skipped for a cooldown instead of being paid for on
  every request; a half-open probe re-admits it when it recovers.
  Time is injectable, so every transition is testable without sleeps.
* :class:`AdmissionController` — adaptive load shedding in front of
  the micro-batcher: priority classes (control-plane endpoints are
  never shed), queue-depth watermarks per class, and an optional
  rolling-p99 latency brake.  :func:`compute_retry_after_s` turns the
  live queue drain rate into an honest ``Retry-After`` hint instead of
  a constant.
* :class:`ChaosPolicy` — the service-layer extension of PR 1's fault
  injectors: injected dispatch latency, tier exceptions
  (:class:`ChaosError`), connection resets and slow-loris response
  writes, all seeded and rate-controlled.  ``repro serve --chaos``
  wires it in for tests and the resilience bench.

Everything reports on the global :mod:`repro.obs` registry under
``serve.breaker.*``, ``serve.admission.*`` and ``serve.chaos.*``
(catalogue in docs/resilience.md).
"""

from __future__ import annotations

import math
import random
import threading
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.serve.clock import SystemClock

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "TierBreakerBoard",
    "AdmissionController",
    "Priority",
    "compute_retry_after_s",
    "ChaosError",
    "ChaosPolicy",
    "ChaosTier",
]


# ----------------------------------------------------------------------
# circuit breakers
# ----------------------------------------------------------------------
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for the ``serve.breaker.state`` gauge (a text state
#: cannot ride a Prometheus gauge): closed < half-open < open.
_STATE_CODE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Closed → open → half-open breaker over a sliding outcome window.

    The contract, which the hypothesis property in
    ``tests/test_serve_resilience.py`` enforces over arbitrary event
    sequences:

    * **closed**: calls flow; the last ``window`` outcomes are kept.
      Once at least ``min_calls`` outcomes are recorded and the failure
      fraction reaches ``failure_threshold``, the breaker opens.
    * **open**: :meth:`allow` answers False (a *short circuit*) until
      ``cooldown_s`` has elapsed on the injected clock; the first
      :meth:`allow` after the cooldown flips to half-open and admits
      the caller as the probe.  An open breaker can therefore never
      wedge: enough elapsed time always re-enables probing.
    * **half-open**: up to ``half_open_probes`` concurrent probes are
      admitted.  A recorded success closes the breaker (window reset);
      a recorded failure re-opens it and re-arms the full cooldown.
      There is no open → closed edge that skips the probe state.

    Thread-safe; every transition lands in
    ``serve.breaker.transitions{breaker=...,to=...}`` and the live state in
    the ``serve.breaker.state{breaker=...}`` gauge.
    """

    def __init__(
        self,
        name: str = "default",
        window: int = 20,
        failure_threshold: float = 0.5,
        min_calls: int = 5,
        cooldown_s: float = 5.0,
        half_open_probes: int = 1,
        clock=None,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], got {failure_threshold}")
        if min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {min_calls}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {half_open_probes}")
        self.name = name
        self.window = int(window)
        self.failure_threshold = float(failure_threshold)
        self.min_calls = int(min_calls)
        self.cooldown_s = float(cooldown_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=self.window)
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._opened_count = 0
        obs.gauge("serve.breaker.state", breaker=self.name).set(0)

    # -- state machine (always called with the lock held) ---------------
    def _transition(self, to: str) -> None:
        self._state = to
        obs.counter("serve.breaker.transitions", breaker=self.name, to=to).inc()
        obs.gauge("serve.breaker.state", breaker=self.name).set(_STATE_CODE[to])
        if to == OPEN:
            self._opened_at = self._clock.monotonic()
            self._opened_count += 1
            self._outcomes.clear()
        elif to == HALF_OPEN:
            self._probes_in_flight = 0
        elif to == CLOSED:
            self._opened_at = None
            self._outcomes.clear()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  Claims a probe slot if half-open."""
        with self._lock:
            if self._state == OPEN:
                elapsed = self._clock.monotonic() - self._opened_at
                if elapsed < self.cooldown_s:
                    obs.counter("serve.breaker.short_circuits", breaker=self.name).inc()
                    return False
                self._transition(HALF_OPEN)
            if self._state == HALF_OPEN:
                if self._probes_in_flight >= self.half_open_probes:
                    obs.counter("serve.breaker.short_circuits", breaker=self.name).inc()
                    return False
                self._probes_in_flight += 1
                return True
            return True  # closed

    def record(self, ok: bool) -> None:
        """Record one call outcome (exceptions are failures; a tier
        *declining* for a legitimate reason is a success — it ran)."""
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe's verdict decides; no window statistics here.
                self._transition(CLOSED if ok else OPEN)
                return
            if self._state == OPEN:
                return  # late result from a call admitted pre-open
            self._outcomes.append(bool(ok))
            if len(self._outcomes) >= self.min_calls:
                failures = sum(1 for o in self._outcomes if not o)
                if failures / len(self._outcomes) >= self.failure_threshold:
                    self._transition(OPEN)

    def record_success(self) -> None:
        self.record(True)

    def record_failure(self) -> None:
        self.record(False)

    def cooldown_remaining_s(self) -> float:
        """Seconds until an open breaker will admit a probe (0 otherwise)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock.monotonic() - self._opened_at))

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state card (served on ``/healthz``)."""
        with self._lock:
            out: Dict[str, object] = {
                "state": self._state,
                "window": list(self._outcomes).count(False),
                "window_calls": len(self._outcomes),
                "opened_count": self._opened_count,
            }
            if self._state == OPEN:
                out["cooldown_remaining_s"] = round(
                    max(0.0, self.cooldown_s - (self._clock.monotonic() - self._opened_at)), 3
                )
            return out


class TierBreakerBoard:
    """One :class:`CircuitBreaker` per fallback tier, as a tier guard.

    Plugs into :class:`repro.algorithms.fallback.FallbackLocalizer` via
    its ``tier_guard`` hook: :meth:`check` is consulted before a tier
    runs (returning a decline reason while its breaker refuses calls)
    and :meth:`record` hears every per-request outcome.  Breakers are
    created lazily per tier name, so the board survives model
    hot-reloads with its state intact — a wedged tier stays quarantined
    across a reload that did not fix it.
    """

    def __init__(
        self,
        window: int = 20,
        failure_threshold: float = 0.5,
        min_calls: int = 5,
        cooldown_s: float = 5.0,
        half_open_probes: int = 1,
        clock=None,
    ):
        self._kwargs = dict(
            window=window,
            failure_threshold=failure_threshold,
            min_calls=min_calls,
            cooldown_s=cooldown_s,
            half_open_probes=half_open_probes,
        )
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, tier: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(tier)
            if breaker is None:
                breaker = CircuitBreaker(name=tier, clock=self._clock, **self._kwargs)
                self._breakers[tier] = breaker
            return breaker

    # -- the FallbackLocalizer tier-guard protocol -----------------------
    def check(self, tier: str) -> Optional[str]:
        """None to proceed, or a human-readable skip reason."""
        breaker = self.breaker(tier)
        if breaker.allow():
            return None
        remaining = breaker.cooldown_remaining_s()
        if remaining > 0:
            return f"circuit open ({remaining:.1f}s cooldown remaining)"
        return "circuit half-open (probe in flight)"

    def record(self, tier: str, ok: bool) -> None:
        self.breaker(tier).record(ok)

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            breakers = dict(self._breakers)
        return {tier: b.snapshot() for tier, b in sorted(breakers.items())}

    def health(self) -> Tuple[bool, object]:
        """/healthz check: degraded only when *every* tier is open.

        One open breaker means the chain is degraded but still
        answering from lower tiers — ejecting the instance for that
        would turn a partial failure into a total one.
        """
        snap = self.snapshot()
        if not snap:
            return True, {"breakers": "no calls yet"}
        all_open = all(s["state"] == OPEN for s in snap.values())
        return not all_open, snap


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class Priority:
    """Request priority classes, shed in reverse order under pressure.

    ``CRITICAL`` (health, metrics, admin) is never shed: an overloaded
    instance that stops answering ``/healthz`` looks *dead* instead of
    *busy*, and the load balancer's response to dead is worse.
    """

    CRITICAL = "critical"
    NORMAL = "normal"
    BULK = "bulk"


def compute_retry_after_s(
    queue_depth: int,
    drain_rate: Optional[float] = None,
    max_batch: int = 1,
    max_wait_s: float = 0.0,
    floor_s: int = 1,
    cap_s: int = 60,
) -> int:
    """An honest ``Retry-After``: how long until the queue has drained.

    Prefers the measured drain rate (requests/s leaving the queue);
    before any dispatch has been observed it falls back to the
    structural estimate ``queue_depth / max_batch`` batch windows of
    ``max_wait_s`` each.  Clamped to ``[floor_s, cap_s]`` so a client
    never sees 0 (hammer me now) or an absurd hour.
    """
    queue_depth = max(0, int(queue_depth))
    if drain_rate is not None and drain_rate > 0:
        estimate = queue_depth / drain_rate
    else:
        estimate = math.ceil(queue_depth / max(1, int(max_batch))) * max(0.0, max_wait_s)
    return int(min(max(math.ceil(estimate), floor_s), cap_s))


class AdmissionController:
    """Adaptive load shedding in front of the micro-batcher.

    Two brakes, both per priority class:

    * **queue watermarks** — a class is shed once the live queue depth
      reaches its fraction of ``max_queue`` (``queue_watermarks``).
      By default only bulk traffic sheds early (at 75 % depth); normal
      traffic's shed point is the hard queue bound itself — the
      batcher's ``QueueFullError`` — so the queue's last 25 % is
      reserved headroom for single-observation traffic.  Critical
      traffic is never shed at all.
    * **latency** — with ``p99_limit_ms`` set, a rolling window of
      observed request latencies is kept; bulk sheds when the window
      p99 crosses the limit, normal when it crosses twice the limit.
      This is the backstop for the regime where the queue is short but
      every request is slow (a degraded dependency, chaos latency).

    :meth:`admit` returns ``None`` to admit or a machine-readable shed
    reason; every shed lands in
    ``serve.admission.shed{class=...,reason=...}``.
    """

    #: Default shed watermarks as fractions of ``max_queue``
    #: (None = no early queue shed for that class).
    DEFAULT_WATERMARKS = {Priority.CRITICAL: None, Priority.NORMAL: None, Priority.BULK: 0.75}

    def __init__(
        self,
        max_queue: int,
        p99_limit_ms: Optional[float] = None,
        latency_window: int = 256,
        queue_watermarks: Optional[Dict[str, Optional[float]]] = None,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if latency_window < 8:
            raise ValueError(f"latency_window must be >= 8, got {latency_window}")
        self.max_queue = int(max_queue)
        self.p99_limit_ms = None if p99_limit_ms is None else float(p99_limit_ms)
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))
        self._lock = threading.Lock()
        self.queue_watermarks = dict(self.DEFAULT_WATERMARKS)
        if queue_watermarks:
            self.queue_watermarks.update(queue_watermarks)

    def note_latency_ms(self, latency_ms: float) -> None:
        with self._lock:
            self._latencies.append(float(latency_ms))

    def p99_ms(self) -> Optional[float]:
        """Rolling p99 over the observed window (None until 8 samples)."""
        with self._lock:
            if len(self._latencies) < 8:
                return None
            ordered = sorted(self._latencies)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    def admit(self, priority: str, queue_depth: int) -> Optional[str]:
        """None = admitted; otherwise the shed reason."""
        if priority == Priority.CRITICAL:
            return None  # critical class: never shed
        watermark = self.queue_watermarks.get(priority)
        if watermark is not None and queue_depth >= watermark * self.max_queue:
            obs.counter("serve.admission.shed", **{"class": priority, "reason": "queue_pressure"}).inc()
            return (
                f"queue pressure: depth {queue_depth} >= "
                f"{watermark:.0%} of {self.max_queue} for class {priority}"
            )
        if self.p99_limit_ms is not None:
            p99 = self.p99_ms()
            limit = self.p99_limit_ms * (2.0 if priority == Priority.NORMAL else 1.0)
            if p99 is not None and p99 > limit:
                obs.counter("serve.admission.shed", **{"class": priority, "reason": "latency"}).inc()
                return f"latency pressure: p99 {p99:.0f}ms > {limit:.0f}ms for class {priority}"
        return None


# ----------------------------------------------------------------------
# chaos
# ----------------------------------------------------------------------
class ChaosError(RuntimeError):
    """An injected fault (subclasses RuntimeError so the fallback chain
    treats it exactly like a real tier error: decline, move on)."""


class ChaosPolicy:
    """Seeded, rate-controlled fault injection for the service layer.

    The serve-path analogue of :mod:`repro.robustness.injectors`: where
    PR 1's injectors mangle *data* (sweeps, wi-scan text), this one
    mangles *service behaviour*:

    * ``latency_ms``/``latency_rate`` — added dispatch latency on that
      fraction of locate requests (plus uniform jitter up to
      ``latency_jitter_ms``);
    * ``tier_error_rate``/``tiers`` — that fraction of calls into the
      named fallback tiers raises :class:`ChaosError` (all tiers when
      ``tiers`` is empty) — the input that trips circuit breakers;
    * ``reset_rate`` — that fraction of data-plane responses is
      answered by abruptly closing the connection instead (the client
      sees a reset/EOF — transport-error handling food);
    * ``slowloris_rate`` — that fraction of responses is written in
      dribbled chunks with ``slowloris_delay_s`` pauses, exercising
      client read-timeout handling.

    All randomness flows through one seeded ``random.Random`` behind a
    lock, so a chaos run is reproducible.  Every injected fault counts
    in ``serve.chaos.injected{kind=...}``.
    """

    def __init__(
        self,
        latency_ms: float = 0.0,
        latency_rate: float = 1.0,
        latency_jitter_ms: float = 0.0,
        tier_error_rate: float = 0.0,
        tiers: Iterable[str] = (),
        reset_rate: float = 0.0,
        slowloris_rate: float = 0.0,
        slowloris_delay_s: float = 0.02,
        seed: int = 0,
    ):
        for rate_name in ("latency_rate", "tier_error_rate", "reset_rate", "slowloris_rate"):
            rate = locals()[rate_name]
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if latency_ms < 0 or latency_jitter_ms < 0:
            raise ValueError("latency injections must be non-negative")
        self.latency_ms = float(latency_ms)
        self.latency_rate = float(latency_rate)
        self.latency_jitter_ms = float(latency_jitter_ms)
        self.tier_error_rate = float(tier_error_rate)
        self.tiers = tuple(tiers)
        self.reset_rate = float(reset_rate)
        self.slowloris_rate = float(slowloris_rate)
        self.slowloris_delay_s = float(slowloris_delay_s)
        self.seed = int(seed)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def _hit(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            return rate >= 1.0 or self._rng.random() < rate

    def dispatch_latency_s(self) -> float:
        """Seconds of injected latency for this request (0 = none)."""
        if self.latency_ms <= 0 or not self._hit(self.latency_rate):
            return 0.0
        with self._lock:
            jitter = self._rng.uniform(0.0, self.latency_jitter_ms) if self.latency_jitter_ms else 0.0
        obs.counter("serve.chaos.injected", kind="latency").inc()
        return (self.latency_ms + jitter) / 1000.0

    def tier_fails(self, tier: str) -> bool:
        if self.tiers and tier not in self.tiers:
            return False
        if not self._hit(self.tier_error_rate):
            return False
        obs.counter("serve.chaos.injected", kind="tier_error", tier=tier).inc()
        return True

    def reset_connection(self) -> bool:
        if not self._hit(self.reset_rate):
            return False
        obs.counter("serve.chaos.injected", kind="reset").inc()
        return True

    def slowloris(self) -> bool:
        if not self._hit(self.slowloris_rate):
            return False
        obs.counter("serve.chaos.injected", kind="slowloris").inc()
        return True

    @property
    def active(self) -> bool:
        return any(
            (
                self.latency_ms > 0,
                self.tier_error_rate > 0,
                self.reset_rate > 0,
                self.slowloris_rate > 0,
            )
        )

    def describe(self) -> Dict[str, object]:
        return {
            "latency_ms": self.latency_ms,
            "latency_rate": self.latency_rate,
            "latency_jitter_ms": self.latency_jitter_ms,
            "tier_error_rate": self.tier_error_rate,
            "tiers": list(self.tiers),
            "reset_rate": self.reset_rate,
            "slowloris_rate": self.slowloris_rate,
            "slowloris_delay_s": self.slowloris_delay_s,
            "seed": self.seed,
        }


class ChaosTier:
    """A fitted fallback tier wrapped in fault injection.

    Quacks exactly like the tier the chain calls (``name``, ``locate``,
    ``locate_many``); per the policy's draw a call raises
    :class:`ChaosError` instead of running.  Failures therefore enter
    the chain through the same path a genuinely broken tier would use —
    the breaker, the decline diagnostics and the metrics cannot tell
    the difference, which is the point.
    """

    def __init__(self, tier, policy: ChaosPolicy):
        self._tier = tier
        self._policy = policy
        self.name = getattr(tier, "name", "") or type(tier).__name__

    def locate(self, observation):
        if self._policy.tier_fails(self.name):
            raise ChaosError(f"injected fault in tier {self.name}")
        return self._tier.locate(observation)

    def locate_many(self, observations):
        if self._policy.tier_fails(self.name):
            raise ChaosError(f"injected fault in tier {self.name}")
        return self._tier.locate_many(observations)

    def __getattr__(self, attr):  # pragma: no cover - passthrough plumbing
        return getattr(self._tier, attr)
