"""The service wire format: JSON observations in, JSON estimates out.

Deterministic by construction: :func:`estimate_to_json` is a pure
function of a :class:`~repro.algorithms.base.LocationEstimate`, and
:func:`canonical_json` serializes with sorted keys and no whitespace —
so an HTTP response body can be compared **bit for bit** against the
encoding of a direct ``locate_many`` answer for the same observation
(the service-parity acceptance test does exactly that).  Floats pass
through Python's shortest-repr JSON serialization, which round-trips
every IEEE double exactly.

Observation documents::

    {
      "samples": [[-62.0, null, -71.5], ...],   # sweeps x APs, null = miss
      "bssids": ["00:11:...", ...],             # optional column names
      "deadline_ms": 50,                         # optional, single-locate only
      "site": "hq-3f"                            # optional site pin (fleet mode)
    }

A document's optional ``site`` member pins it to one building: the
multi-site routes pass the path's site id as ``expect_site`` and a
mismatch is a :class:`WireError` (HTTP 400) — a scan surveyed in one
building must never be scored against another's model.

``null`` (JSON) and ``NaN`` mean the same thing a missed AP means
everywhere else in the toolkit.  Estimate documents carry the answer
plus the fallback-chain diagnostics (``tier``/``declined``) and the
machine-readable decline ``reason`` when the system refuses to answer.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import LocationEstimate, Observation

__all__ = [
    "WireError",
    "observation_from_json",
    "estimate_to_json",
    "estimates_to_json",
    "track_estimate_to_json",
    "canonical_json",
]


class WireError(ValueError):
    """A request document that cannot become an Observation."""


def observation_from_json(
    doc: object, expect_site: Optional[str] = None
) -> Observation:
    """Decode one observation document into an :class:`Observation`.

    Raises :class:`WireError` (a ``ValueError``) on any malformed
    payload — the HTTP layer maps it to a 400, never a 500.  With
    ``expect_site`` set (the fleet routes), a document carrying a
    ``site`` member must name that site; without it the member is
    ignored (single-site servers have no fleet to check against).
    """
    if not isinstance(doc, dict):
        raise WireError(f"observation must be a JSON object, got {type(doc).__name__}")
    site = doc.get("site")
    if site is not None:
        if not isinstance(site, str):
            raise WireError(f"'site' must be a string, got {type(site).__name__}")
        if expect_site is not None and site != expect_site:
            raise WireError(
                f"observation is pinned to site {site!r} but was routed to "
                f"site {expect_site!r}"
            )
    samples = doc.get("samples")
    if samples is None:
        raise WireError("observation needs a 'samples' matrix (sweeps x APs)")
    if not isinstance(samples, list) or not samples:
        raise WireError("'samples' must be a non-empty list of sweep rows")
    if not all(isinstance(row, list) for row in samples):
        raise WireError("'samples' rows must be lists of RSSI values")
    widths = {len(row) for row in samples}
    if len(widths) != 1 or widths == {0}:
        raise WireError(f"'samples' rows must share one non-zero width, got widths {sorted(widths)}")
    try:
        matrix = np.array(
            [[math.nan if v is None else float(v) for v in row] for row in samples],
            dtype=float,
        )
    except (TypeError, ValueError) as exc:
        raise WireError(f"non-numeric RSSI value in 'samples': {exc}") from None
    bssids = doc.get("bssids", ())
    if bssids:
        if not isinstance(bssids, list) or not all(isinstance(b, str) for b in bssids):
            raise WireError("'bssids' must be a list of strings")
    try:
        return Observation(matrix, bssids=tuple(bssids))
    except ValueError as exc:
        raise WireError(str(exc)) from None


def _clean_float(value: float) -> Optional[float]:
    value = float(value)
    if value != value or value in (math.inf, -math.inf):
        return None  # strict JSON; the obs exporters use the same rule
    return value


def estimate_to_json(estimate: LocationEstimate) -> Dict[str, object]:
    """Encode one estimate as a JSON-safe document.

    Carries the answer (position/location_name/score/valid) and the
    request diagnostics the fallback chain reports (``tier`` — who
    answered — and ``declined`` — who passed, and why), plus the
    decline ``reason`` for invalid answers.  Numpy-laden algorithm
    internals in ``details`` stay server-side.
    """
    doc: Dict[str, object] = {
        "valid": bool(estimate.valid),
        "position": None,
        "location_name": estimate.location_name,
        "score": _clean_float(estimate.score),
    }
    if estimate.position is not None:
        doc["position"] = {"x": float(estimate.position.x), "y": float(estimate.position.y)}
    details = estimate.details
    diagnostics: Dict[str, object] = {}
    if "tier" in details:
        diagnostics["tier"] = details["tier"]
    if "declined" in details:
        diagnostics["declined"] = [
            {"tier": str(d.get("tier")), "reason": str(d.get("reason"))}
            for d in details["declined"]
        ]
    if diagnostics:
        doc["diagnostics"] = diagnostics
    if not estimate.valid:
        reason = details.get("reason")
        doc["reason"] = str(reason) if reason is not None else "declined"
    return doc


def estimates_to_json(estimates) -> List[Dict[str, object]]:
    return [estimate_to_json(e) for e in estimates]


def _json_safe(value: object) -> object:
    """Total projection of a details value into strict JSON.

    The trackers emit JSON-safe details by construction (that is
    test-enforced); this projection is the codec's safety net — numpy
    scalars become Python numbers, arrays become lists, non-finite
    floats become null, and anything else serializes as its ``str``
    rather than crashing the response.
    """
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return _clean_float(float(value))
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    return str(value)


def track_estimate_to_json(
    estimate: LocationEstimate,
    session_id: str,
    seq: int,
    created: bool = False,
) -> Dict[str, object]:
    """Encode one tracking-session estimate as a JSON-safe document.

    Same answer schema as :func:`estimate_to_json` plus ``tracking``
    (the filter's details — velocity / covariance / raw fix for the
    Kalman filter, posterior entropy and top-k for the discrete Bayes
    filter, ESS and spread for the particle filter) and the ``session``
    envelope: id, ``seq`` (1-based count of scans applied) and whether
    this request ``created`` the session.
    """
    doc = estimate_to_json(estimate)
    doc["tracking"] = _json_safe(dict(estimate.details))
    doc["session"] = {
        "id": str(session_id),
        "seq": int(seq),
        "created": bool(created),
    }
    return doc


def canonical_json(doc: object) -> bytes:
    """The one true serialization: sorted keys, no whitespace, UTF-8.

    Two documents are bit-for-bit equal under this encoding iff every
    float in them is the same IEEE double — the equality the
    service-parity test enforces between HTTP answers and direct
    ``locate_many`` answers.
    """
    return json.dumps(
        doc, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
