"""Multi-site model registry: site-routed serving for a fleet of buildings.

The toolkit localizes one building; a fleet serves thousands.  This
module turns "one :class:`~repro.serve.service.LocalizationService`
per process" into "one :class:`ModelRegistry` per process, many sites
behind it":

* :class:`SiteDefinition` — a site id plus how to build its model
  (database path or object, algorithm, geometry).  Fleets live on disk
  as a directory of ``.tdb``/``.tdbx`` packs with a ``fleet.json``
  manifest (:func:`write_fleet_manifest` / :func:`load_fleet`).
* :class:`SiteRuntime` — everything serving one resident site: the
  fitted service, a per-site locate :class:`~repro.serve.batcher.
  MicroBatcher` (batches never coalesce across sites — one dispatch,
  one model), per-site :class:`~repro.serve.sessions.TrackingSessions`
  and a per-site drift monitor, all created lazily on first use.
* :class:`ModelRegistry` — the bounded LRU of resident runtimes.
  First request for a cold site pays one model load (*single-flight*:
  a thundering herd coalesces onto one loader; followers wait on its
  event).  Loads run **outside** the registry lock, so a cold site
  never blocks requests for warm ones.  Eviction removes the
  least-recently-used *unpinned* runtime — a site with in-flight work
  (``pins > 0``) is never unloaded, even if that temporarily
  overflows capacity.  Per-site generation counters survive eviction:
  the registry remembers each site's last generation and seeds the
  rebuilt service with it, so generations stay strictly monotonic
  per site across evict/reload cycles (the PR 5/8 hot-reload
  machinery, now fleet-wide).

Metrics (all site-labelled — bounded by fleet size, not traffic):
``serve.site.requests{site=,cache=hit|miss|coalesced}``,
``serve.site.loads{site=,result=}``, ``serve.site.evictions{site=}``,
``serve.site_load_ms`` and the ``serve.sites.resident`` gauge.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase
from repro.serve.batcher import MicroBatcher
from repro.serve.service import LocalizationService
from repro.serve.sessions import TrackingSessions

__all__ = [
    "FLEET_MANIFEST",
    "ModelRegistry",
    "SiteDefinition",
    "SiteRuntime",
    "UnknownSiteError",
    "load_fleet",
    "write_fleet_manifest",
]

#: Manifest filename inside a fleet directory.
FLEET_MANIFEST = "fleet.json"
_FLEET_SCHEMA = "repro.fleet/1"
_PACK_SUFFIXES = (".tdb", ".tdbx")


class UnknownSiteError(KeyError):
    """The requested site id is not in the fleet."""

    def __init__(self, site_id: str, known: Tuple[str, ...] = ()):
        super().__init__(site_id)
        self.site_id = site_id
        self.known = tuple(known)

    def __str__(self) -> str:
        return f"unknown site {self.site_id!r}"


@dataclass
class SiteDefinition:
    """How to build one site's model (the registry's unit of config)."""

    site_id: str
    database: Union[str, TrainingDatabase]
    algorithm: str = "fallback"
    ap_positions: Optional[Dict[str, Point]] = None
    bounds: Optional[Tuple[float, float, float, float]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def manifest_entry(self, root: Optional[str] = None) -> Dict[str, object]:
        """JSON-safe manifest record (database path made root-relative)."""
        if isinstance(self.database, TrainingDatabase):
            raise ValueError(
                f"site {self.site_id!r} wraps an in-memory database; "
                "only path-backed sites can be written to a manifest"
            )
        path = str(self.database)
        if root is not None:
            try:
                path = os.path.relpath(path, root)
            except ValueError:  # e.g. different drive on Windows
                pass
        entry: Dict[str, object] = {"database": path, "algorithm": self.algorithm}
        if self.ap_positions is not None:
            entry["ap_positions"] = {
                bssid: [float(p.x), float(p.y)]
                for bssid, p in sorted(self.ap_positions.items())
            }
        if self.bounds is not None:
            entry["bounds"] = [float(v) for v in self.bounds]
        if self.meta:
            entry["meta"] = dict(self.meta)
        return entry


def write_fleet_manifest(
    root: Union[str, os.PathLike],
    sites: Dict[str, SiteDefinition],
    default: Optional[str] = None,
) -> str:
    """Write ``<root>/fleet.json`` describing the fleet; returns its path."""
    root = str(root)
    if default is not None and default not in sites:
        raise ValueError(f"default site {default!r} not in fleet {sorted(sites)}")
    doc = {
        "schema": _FLEET_SCHEMA,
        "default": default if default is not None else (sorted(sites)[0] if sites else None),
        "sites": {
            sid: sites[sid].manifest_entry(root) for sid in sorted(sites)
        },
    }
    path = os.path.join(root, FLEET_MANIFEST)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def _definition_from_entry(site_id: str, entry: Dict[str, object], root: str) -> SiteDefinition:
    if not isinstance(entry, dict) or "database" not in entry:
        raise ValueError(f"fleet manifest: site {site_id!r} needs a 'database' path")
    database = str(entry["database"])
    if not os.path.isabs(database):
        database = os.path.join(root, database)
    ap_positions = None
    raw_aps = entry.get("ap_positions")
    if raw_aps is not None:
        ap_positions = {
            str(bssid): Point(float(xy[0]), float(xy[1]))
            for bssid, xy in raw_aps.items()
        }
    bounds = entry.get("bounds")
    if bounds is not None:
        bounds = tuple(float(v) for v in bounds)
        if len(bounds) != 4:
            raise ValueError(f"site {site_id!r}: bounds must be [x0, y0, x1, y1]")
    return SiteDefinition(
        site_id=site_id,
        database=database,
        algorithm=str(entry.get("algorithm", "fallback")),
        ap_positions=ap_positions,
        bounds=bounds,
        meta=dict(entry.get("meta") or {}),
    )


def load_fleet(path: Union[str, os.PathLike]) -> Tuple[Dict[str, SiteDefinition], Optional[str]]:
    """Load a fleet from a manifest file or directory.

    ``path`` may be a ``fleet.json`` file, or a directory — with a
    manifest it is parsed; without one every ``*.tdb``/``*.tdbx`` pack
    becomes a site named after its stem (a frozen pack shadows a heap
    twin of the same stem).  Returns ``(sites, default_site)``.
    """
    path = str(path)
    if os.path.isdir(path):
        manifest = os.path.join(path, FLEET_MANIFEST)
        if os.path.exists(manifest):
            return load_fleet(manifest)
        sites: Dict[str, SiteDefinition] = {}
        for name in sorted(os.listdir(path)):
            stem, ext = os.path.splitext(name)
            if ext not in _PACK_SUFFIXES:
                continue
            if stem in sites and ext == ".tdb":
                continue  # .tdbx already claimed this site id
            sites[stem] = SiteDefinition(stem, os.path.join(path, name))
        if not sites:
            raise ValueError(f"no fleet manifest or model packs under {path!r}")
        return sites, sorted(sites)[0]
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != _FLEET_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {_FLEET_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    root = os.path.dirname(os.path.abspath(path))
    raw_sites = doc.get("sites") or {}
    sites = {
        str(sid): _definition_from_entry(str(sid), entry, root)
        for sid, entry in raw_sites.items()
    }
    if not sites:
        raise ValueError(f"{path}: fleet has no sites")
    default = doc.get("default")
    if default is not None and str(default) not in sites:
        raise ValueError(f"{path}: default site {default!r} not in {sorted(sites)}")
    return sites, (str(default) if default is not None else sorted(sites)[0])


class SiteRuntime:
    """One resident site: fitted service + lazily started per-site plumbing.

    The service is built (and warmed) when the registry loads the
    site; the locate batcher, tracking sessions and drift monitor are
    created on first use so a site that only ever sees batch requests
    never starts a dispatcher thread it doesn't need.  ``pins`` counts
    in-flight leases — the registry never evicts a pinned runtime.
    """

    def __init__(
        self,
        definition: SiteDefinition,
        service: LocalizationService,
        batch_config: Optional[Dict[str, object]] = None,
        track_config: Optional[Dict[str, object]] = None,
        clock=None,
    ):
        self.definition = definition
        self.site_id = definition.site_id
        self.service = service
        self.pins = 0  # guarded by the owning registry's lock
        self._clock = clock
        self._batch_config = dict(batch_config or {})
        self._track_config = dict(track_config or {})
        self._lock = threading.Lock()
        self._batcher: Optional[MicroBatcher] = None
        self._sessions: Optional[TrackingSessions] = None
        self._drift = None
        self._closed = False

    @property
    def generation(self) -> int:
        return self.service.model().generation

    @property
    def batcher(self) -> MicroBatcher:
        """This site's locate dispatcher (started on first access).

        Per-site by construction: a batch dispatched here only ever
        contains this site's observations, scored by this site's model.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError(f"site runtime {self.site_id!r} is closed")
            if self._batcher is None:
                self._batcher = MicroBatcher(
                    self.service.locate_many,
                    clock=self._clock,
                    name=f"http@{self.site_id}",
                    **self._batch_config,
                ).start()
            return self._batcher

    @property
    def sessions(self) -> TrackingSessions:
        """This site's tracking engine (own factory, own ``track`` batcher)."""
        with self._lock:
            if self._closed:
                raise RuntimeError(f"site runtime {self.site_id!r} is closed")
            if self._sessions is None:
                config = dict(self._track_config)
                config.setdefault("bounds", self.definition.bounds)
                self._sessions = TrackingSessions(
                    self.service,
                    clock=self._clock,
                    name=f"track@{self.site_id}",
                    **config,
                ).start()
            return self._sessions

    def drift_monitor(self, **kwargs):
        """This site's :class:`~repro.obs.quality.APDriftMonitor` (lazy).

        Site-labelled and per-AP-capped so fleet ``/metrics`` stays
        bounded (``sites × cap`` series, not ``sites × APs``).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError(f"site runtime {self.site_id!r} is closed")
            if self._drift is None:
                from repro.obs.quality import APDriftMonitor

                self._drift = APDriftMonitor(
                    self.service.model().db, site=self.site_id, **kwargs
                )
            return self._drift

    def rebind_sessions(self) -> Optional[Dict[str, int]]:
        """Re-point live trackers after a reload; None if never tracked."""
        with self._lock:
            sessions = self._sessions
        if sessions is None:
            return None
        return sessions.rebind()

    def describe(self) -> Dict[str, object]:
        info = self.service.describe()
        info["site"] = self.site_id
        return info

    def close(self) -> None:
        """Stop started dispatchers (drains accepted work first)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batcher, sessions = self._batcher, self._sessions
            self._batcher = self._sessions = self._drift = None
        if batcher is not None:
            batcher.stop()
        if sessions is not None:
            sessions.stop()


class _Flight:
    """Single-flight slot: one leader loads, followers wait on the event."""

    __slots__ = ("event", "error")

    def __init__(self):
        self.event = threading.Event()
        self.error: Optional[BaseException] = None


class ModelRegistry:
    """Bounded LRU of resident :class:`SiteRuntime`\\ s, keyed by site id.

    Parameters
    ----------
    sites:
        ``{site_id: SiteDefinition}``, or a fleet directory / manifest
        path (anything :func:`load_fleet` accepts).
    capacity:
        Max resident sites.  Pinned runtimes may overflow this
        temporarily — correctness (never unload in-flight work) beats
        the bound; the overflow is trimmed at the next release.
    default_site:
        Site the legacy single-site routes alias.  Defaults to the
        manifest's ``default`` (or the lexicographically first site).
    batch_config / track_config:
        Keyword overrides for each runtime's per-site
        :class:`MicroBatcher` / :class:`TrackingSessions`.
    service_kwargs:
        Extra :class:`LocalizationService` keywords applied to every
        site build (e.g. ``breakers=False``, ``chaos=policy``).
    """

    def __init__(
        self,
        sites: Union[str, os.PathLike, Dict[str, SiteDefinition]],
        capacity: int = 8,
        default_site: Optional[str] = None,
        clock=None,
        batch_config: Optional[Dict[str, object]] = None,
        track_config: Optional[Dict[str, object]] = None,
        service_kwargs: Optional[Dict[str, object]] = None,
    ):
        if isinstance(sites, (str, os.PathLike)):
            sites, manifest_default = load_fleet(sites)
            if default_site is None:
                default_site = manifest_default
        if not sites:
            raise ValueError("a ModelRegistry needs at least one site")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sites: Dict[str, SiteDefinition] = dict(sites)
        if default_site is None:
            default_site = sorted(self._sites)[0]
        if default_site not in self._sites:
            raise UnknownSiteError(default_site, tuple(sorted(self._sites)))
        self.capacity = int(capacity)
        self.default_site = default_site
        self._clock = clock
        self._batch_config = dict(batch_config or {})
        self._track_config = dict(track_config or {})
        self._service_kwargs = dict(service_kwargs or {})
        self._lock = threading.Lock()
        self._resident: "OrderedDict[str, SiteRuntime]" = OrderedDict()
        self._loading: Dict[str, _Flight] = {}
        self._generations: Dict[str, int] = {}
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._loads = 0
        self._evictions = 0
        self._closed = False

    def configure_runtimes(
        self,
        batch_config: Optional[Dict[str, object]] = None,
        track_config: Optional[Dict[str, object]] = None,
        clock=None,
    ) -> "ModelRegistry":
        """Fill in runtime knobs not set at construction.

        The HTTP server pushes its batching/tracking flags here before
        the first site loads, so one ``ModelRegistry(path)`` plus the
        usual server flags configures the whole fleet; explicit
        constructor-time config always wins over these defaults.
        """
        for key, value in (batch_config or {}).items():
            self._batch_config.setdefault(key, value)
        for key, value in (track_config or {}).items():
            self._track_config.setdefault(key, value)
        if clock is not None and self._clock is None:
            self._clock = clock
        return self

    # -- fleet introspection ---------------------------------------------
    def site_ids(self) -> List[str]:
        return sorted(self._sites)

    def __contains__(self, site_id: str) -> bool:
        return site_id in self._sites

    def __len__(self) -> int:
        with self._lock:
            return len(self._resident)

    def resolve(self, site_id: Optional[str]) -> str:
        """Map ``None`` → default site; unknown ids raise."""
        if site_id is None:
            return self.default_site
        if site_id not in self._sites:
            raise UnknownSiteError(site_id, tuple(sorted(self._sites)))
        return site_id

    def generation_of(self, site_id: str) -> int:
        """Last known generation for a site (0 if never loaded)."""
        with self._lock:
            return self._generations.get(site_id, 0)

    # -- acquire / release -----------------------------------------------
    def acquire(self, site_id: Optional[str] = None) -> SiteRuntime:
        """Pin and return the site's runtime, loading it if cold.

        Every ``acquire`` must be paired with :meth:`release` (or use
        :meth:`lease`): the pin is what keeps the runtime safe from
        eviction while a request is in flight on it.
        """
        sid = self.resolve(site_id)
        waited = False
        while True:
            with self._lock:
                if self._closed:
                    raise RuntimeError("ModelRegistry is closed")
                runtime = self._resident.get(sid)
                if runtime is not None:
                    self._resident.move_to_end(sid)
                    runtime.pins += 1
                    # Exactly one requests increment per acquire: hit
                    # (was resident), coalesced (waited on another's
                    # load) or miss (did the load itself).
                    if waited:
                        self._coalesced += 1
                        cache = "coalesced"
                    else:
                        self._hits += 1
                        cache = "hit"
                    obs.counter("serve.site.requests", site=sid, cache=cache).inc()
                    return runtime
                flight = self._loading.get(sid)
                if flight is None:
                    flight = _Flight()
                    self._loading[sid] = flight
                    leader = True
                    self._misses += 1
                else:
                    leader = False
            if leader:
                obs.counter("serve.site.requests", site=sid, cache="miss").inc()
                return self._load(sid, flight)
            # Follower: wait for the leader's load, then retry the LRU —
            # the herd pays one model fit, not N.
            waited = True
            flight.event.wait()
            if flight.error is not None:
                raise flight.error

    def release(self, runtime: SiteRuntime) -> None:
        """Unpin; trims any pinned-overflow the bound deferred."""
        victims: List[SiteRuntime] = []
        with self._lock:
            if runtime.pins <= 0:
                raise RuntimeError(
                    f"release without acquire on site {runtime.site_id!r}"
                )
            runtime.pins -= 1
            victims = self._evict_overflow_locked()
        for victim in victims:
            victim.close()

    @contextmanager
    def lease(self, site_id: Optional[str] = None) -> Iterator[SiteRuntime]:
        runtime = self.acquire(site_id)
        try:
            yield runtime
        finally:
            self.release(runtime)

    # -- loading ----------------------------------------------------------
    def _build_runtime(self, sid: str) -> SiteRuntime:
        """Build + warm one site's service.  Runs *outside* the registry
        lock: a cold-site fit never stalls warm-site acquires."""
        definition = self._sites[sid]
        with self._lock:
            base = self._generations.get(sid, 0)
        service = LocalizationService(
            definition.database,
            algorithm=definition.algorithm,
            ap_positions=definition.ap_positions,
            bounds=definition.bounds,
            generation_base=base,
            **self._service_kwargs,
        )
        return SiteRuntime(
            definition,
            service,
            batch_config=self._batch_config,
            track_config=self._track_config,
            clock=self._clock,
        )

    def _load(self, sid: str, flight: _Flight) -> SiteRuntime:
        started = time.perf_counter()
        try:
            with obs.span("serve.site_load", site=sid):
                runtime = self._build_runtime(sid)
        except BaseException as exc:
            with self._lock:
                self._loading.pop(sid, None)
                flight.error = exc
            flight.event.set()
            obs.counter("serve.site.loads", site=sid, result="failed").inc()
            raise
        victims: List[SiteRuntime] = []
        with self._lock:
            self._loading.pop(sid, None)
            runtime.pins += 1  # the leader's own lease
            self._resident[sid] = runtime
            self._resident.move_to_end(sid)
            self._generations[sid] = runtime.generation
            self._loads += 1
            victims = self._evict_overflow_locked()
            resident = len(self._resident)
        flight.event.set()
        for victim in victims:
            victim.close()
        obs.counter("serve.site.loads", site=sid, result="ok").inc()
        obs.histogram("serve.site_load_ms").observe(
            (time.perf_counter() - started) * 1000.0
        )
        obs.gauge("serve.sites.resident").set(resident)
        return runtime

    def _evict_overflow_locked(self) -> List[SiteRuntime]:
        """LRU-evict unpinned runtimes down to capacity (lock held).

        Returns the victims; the caller closes them *after* dropping
        the lock (close drains dispatcher threads — never hold the
        registry lock across that).
        """
        victims: List[SiteRuntime] = []
        if len(self._resident) <= self.capacity:
            return victims
        for sid in list(self._resident):  # oldest first
            if len(self._resident) <= self.capacity:
                break
            runtime = self._resident[sid]
            if runtime.pins > 0:
                continue  # in-flight work: never unload
            del self._resident[sid]
            victims.append(runtime)
            self._evictions += 1
            obs.counter("serve.site.evictions", site=sid).inc()
        if victims:
            obs.gauge("serve.sites.resident").set(len(self._resident))
        return victims

    # -- reload ------------------------------------------------------------
    def reload(
        self, site_id: Optional[str] = None, database: Optional[str] = None
    ) -> Dict[str, object]:
        """Hot-reload one site's model (loading the site first if cold).

        With ``database`` the site's definition is repointed too, so a
        later evict + cold load rebuilds from the *new* pack rather
        than silently reverting.  Live trackers on the site rebind to
        the fresh generation, exactly like the single-site path.
        """
        with self.lease(site_id) as runtime:
            info = runtime.service.reload(database)
            if database is not None:
                runtime.definition.database = str(database)
            rebound = runtime.rebind_sessions()
            with self._lock:
                self._generations[runtime.site_id] = runtime.generation
            info = dict(info)
            info["site"] = runtime.site_id
            if rebound is not None:
                info["sessions"] = rebound
            return info

    # -- lifecycle ---------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """JSON-safe registry card (``GET /v1/sites``, CLI status)."""
        with self._lock:
            resident = [
                {
                    "site": sid,
                    "generation": self._generations.get(sid, 0),
                    "pins": runtime.pins,
                }
                for sid, runtime in self._resident.items()  # LRU → MRU
            ]
            loading = sorted(self._loading)
            counters = {
                "hits": self._hits,
                "misses": self._misses,
                "coalesced": self._coalesced,
                "loads": self._loads,
                "evictions": self._evictions,
            }
            generations = dict(self._generations)
        return {
            "capacity": self.capacity,
            "default": self.default_site,
            "sites": self.site_ids(),
            "resident": resident,
            "loading": loading,
            "generations": generations,
            **counters,
        }

    def close(self) -> None:
        """Stop every resident runtime (drains their dispatchers)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            victims = list(self._resident.values())
            self._resident.clear()
        for victim in victims:
            victim.close()
        obs.gauge("serve.sites.resident").set(0)

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
