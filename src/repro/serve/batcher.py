"""The micro-batching queue: many concurrent requests, one kernel pass.

PR 3 made ``locate_many`` 4–9x faster per observation than ``locate``
— but only bulk callers saw it.  A live service receives observations
one at a time from many connections; dispatching each alone would pay
the slow path forever.  :class:`MicroBatcher` closes the gap: incoming
single requests are queued, a dedicated dispatcher thread collects
them for up to ``max_wait_ms`` (or until ``max_batch`` are waiting)
and hands the whole group to one ``dispatch`` call — for the
localization service, one ``locate_many`` through the chunked/sharded
engine.  Each caller gets a :class:`concurrent.futures.Future`
resolved with *its* answer, exactly once, in submission order.

Admission control is part of the contract, not an afterthought:

* the queue is bounded (``max_queue``); a full queue raises
  :class:`QueueFullError` immediately instead of building unbounded
  latency — the HTTP layer turns that into 429 + ``Retry-After``;
* each request may carry an absolute deadline; a request whose
  deadline has *already* passed is refused at :meth:`submit` time (it
  would only waste a bounded-queue slot), and one that expires while
  queued is failed with :class:`DeadlineExceededError` *before*
  wasting kernel time on it;
* the batcher measures its own drain rate (an EWMA of requests
  leaving the queue per second) so the HTTP layer can compute an
  honest ``Retry-After`` from live behaviour instead of a constant.

Instrumented on the global :mod:`repro.obs` registry: queue-depth
gauge, batch-size and queue-wait histograms, dispatch/rejection/expiry
counters (catalogue in docs/serving.md).  Time is injectable (see
:mod:`repro.serve.clock`) so wait-timeout behaviour is testable
without real sleeps.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Deque, List, Optional, Sequence

from repro import obs
from repro.serve.clock import SystemClock

__all__ = ["BatchFailure", "MicroBatcher", "QueueFullError", "DeadlineExceededError"]


class QueueFullError(RuntimeError):
    """Admission control: the bounded request queue is at capacity."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before it could be dispatched."""


class BatchFailure:
    """A per-item failure inside an otherwise-successful dispatch.

    A dispatch may return ``BatchFailure(exc)`` at position *i* to
    resolve request *i*'s future with ``exc`` while the rest of the
    batch completes normally — the tracking-session dispatcher uses
    this so one closed session cannot fail a whole coalesced batch.
    A dispatch that *raises* still fails every request in the batch.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


class _Request:
    __slots__ = ("payload", "future", "deadline", "enqueued_at", "ctx")

    def __init__(
        self,
        payload: Any,
        future: Future,
        deadline: Optional[float],
        enqueued_at: float,
        ctx=None,
    ):
        self.payload = payload
        self.future = future
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        # The submitter's TraceContext (or None): captured at submit so
        # the dispatcher thread can stitch the fan-in — N request
        # traces share one dispatch span via span links.
        self.ctx = ctx


class MicroBatcher:
    """Collect concurrent single requests into one batched dispatch.

    Parameters
    ----------
    dispatch:
        ``dispatch(payloads) -> results`` with ``len(results) ==
        len(payloads)`` and result *i* answering payload *i* — exactly
        the ``locate_many`` contract.  Called from the dispatcher
        thread only.
    max_batch:
        Dispatch as soon as this many requests are waiting.  1 turns
        micro-batching off (every request dispatches alone) — the
        baseline the serving bench compares against.
    max_wait_ms:
        How long the *first* request of a window may wait for company
        before the batch goes out regardless of size.  The knob trades
        a bounded latency floor for throughput; 0 dispatches whatever
        is queued the moment the dispatcher is free.
    max_queue:
        Bound on waiting requests; beyond it :meth:`submit` raises
        :class:`QueueFullError`.
    clock:
        A :mod:`repro.serve.clock` time source (default real time).
    name:
        Label on every metric series this batcher emits.
    """

    def __init__(
        self,
        dispatch: Callable[[List[Any]], Sequence[Any]],
        max_batch: int = 64,
        max_wait_ms: float = 5.0,
        max_queue: int = 256,
        clock=None,
        name: str = "serve",
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._dispatch = dispatch
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        self._clock = clock if clock is not None else SystemClock()
        self.name = name
        self._queue: Deque[_Request] = deque()
        self._cond = threading.Condition()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        # Drain-rate EWMA (requests/s leaving the queue), updated after
        # each dispatch; None until the first inter-dispatch interval.
        self._drain_rate: Optional[float] = None
        self._last_dispatch_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._thread is not None:
            raise RuntimeError("MicroBatcher already started")
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name=f"repro-batcher-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting work, drain what is queued, join the thread.

        Every already-accepted request still gets its answer (or its
        error): the dispatcher keeps draining until the queue is empty
        before exiting, so no future is left dangling.
        """
        thread = self._thread
        if thread is None:
            return
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def alive(self) -> bool:
        """Whether the dispatcher thread is running (a /healthz input)."""
        return self._thread is not None and self._thread.is_alive()

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def drain_rate(self) -> Optional[float]:
        """EWMA of requests leaving the queue per second (None = no data).

        The live input to ``Retry-After``: ``queue_depth / drain_rate``
        is how long a rejected client should expect the backlog to
        take.
        """
        with self._cond:
            return self._drain_rate

    def _note_drained(self, n: int) -> None:
        """Fold one completed dispatch of ``n`` requests into the EWMA."""
        now = self._clock.monotonic()
        with self._cond:
            if self._last_dispatch_at is not None:
                dt = now - self._last_dispatch_at
                if dt > 0:
                    instant = n / dt
                    self._drain_rate = (
                        instant
                        if self._drain_rate is None
                        else 0.7 * self._drain_rate + 0.3 * instant
                    )
                    obs.gauge("serve.drain_rate", batcher=self.name).set(
                        round(self._drain_rate, 3)
                    )
            self._last_dispatch_at = now

    # -- producer side ---------------------------------------------------
    def submit(self, payload: Any, deadline: Optional[float] = None) -> "Future":
        """Enqueue one request; returns the Future carrying its answer.

        ``deadline`` is an absolute time on this batcher's clock
        (``clock.monotonic() + budget``); expired requests fail with
        :class:`DeadlineExceededError` instead of being dispatched.  A
        deadline that has already passed at submit time is refused
        immediately — a doomed request must not occupy a bounded-queue
        slot that a live one could use.  Raises :class:`QueueFullError`
        when admission control rejects the request — the caller never
        blocks on a saturated queue.
        """
        future: Future = Future()
        with self._cond:
            if self._stopping or self._thread is None:
                raise RuntimeError("MicroBatcher is not running")
            if deadline is not None:
                now = self._clock.monotonic()
                if now >= deadline:
                    obs.counter(
                        "serve.rejected", batcher=self.name, reason="deadline_expired"
                    ).inc()
                    raise DeadlineExceededError(
                        f"deadline passed {now - deadline:.4f}s before enqueue"
                    )
            if len(self._queue) >= self.max_queue:
                obs.counter("serve.rejected", batcher=self.name, reason="queue_full").inc()
                raise QueueFullError(
                    f"request queue at capacity ({self.max_queue}); retry later"
                )
            self._queue.append(
                _Request(
                    payload,
                    future,
                    deadline,
                    self._clock.monotonic(),
                    ctx=obs.current_context(),
                )
            )
            obs.gauge("serve.queue_depth", batcher=self.name).set(len(self._queue))
            self._cond.notify_all()
        return future

    def submit_wait(self, payload: Any, timeout: Optional[float] = None) -> Any:
        """Blocking convenience: submit and wait for the answer."""
        return self.submit(payload).result(timeout)

    # -- dispatcher side -------------------------------------------------
    def _collect(self) -> Optional[List[_Request]]:
        """Wait for work, apply the batching window, drain one batch.

        Returns None exactly once: when stopping with an empty queue.
        """
        with self._cond:
            while not self._queue:
                if self._stopping:
                    return None
                self._cond.wait()  # untimed: no work means nothing to time
            window_ends = self._queue[0].enqueued_at + self.max_wait_s
            while len(self._queue) < self.max_batch and not self._stopping:
                remaining = window_ends - self._clock.monotonic()
                if remaining <= 0:
                    break
                self._clock.wait(self._cond, remaining)
            batch = [
                self._queue.popleft()
                for _ in range(min(self.max_batch, len(self._queue)))
            ]
            obs.gauge("serve.queue_depth", batcher=self.name).set(len(self._queue))
        return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            now = self._clock.monotonic()
            live: List[_Request] = []
            for req in batch:
                if req.deadline is not None and now > req.deadline:
                    obs.counter("serve.deadline_expired", batcher=self.name).inc()
                    req.future.set_exception(
                        DeadlineExceededError(
                            f"deadline passed {now - req.deadline:.4f}s before dispatch"
                        )
                    )
                else:
                    live.append(req)
            if not live:
                self._note_drained(len(batch))
                continue
            obs.counter("serve.batches", batcher=self.name).inc()
            obs.histogram("serve.batch_size", batcher=self.name).observe(len(live))
            obs.histogram("serve.batch_wait_ms", batcher=self.name).observe_many(
                1000.0 * (now - req.enqueued_at) for req in live
            )
            # The fan-in stitch: the dispatch runs under the *first*
            # live request's trace context (so engine/chunk/shard spans
            # land in one trace), and the dispatch span links every
            # coalesced request's (trace_id, span_id) — the flight
            # recorder copies it into each linked trace, so all N
            # requests see the shared dispatch in their own tree.
            ctxs = [req.ctx for req in live if req.ctx is not None]
            attrs: dict = {"batcher": self.name, "size": len(live)}
            if ctxs:
                attrs["links"] = [
                    {"trace_id": c.trace_id, "span_id": c.span_id} for c in ctxs
                ]
            try:
                with obs.bind(ctxs[0] if ctxs else None):
                    with obs.span("serve.dispatch", **attrs):
                        results = self._dispatch([req.payload for req in live])
                if len(results) != len(live):
                    raise RuntimeError(
                        f"dispatch returned {len(results)} results for {len(live)} requests"
                    )
            except Exception as exc:  # noqa: BLE001 - every caller must hear about it
                obs.counter("serve.dispatch_errors", batcher=self.name).inc()
                for req in live:
                    req.future.set_exception(exc)
                self._note_drained(len(batch))
                continue
            for req, result in zip(live, results):
                if isinstance(result, BatchFailure):
                    req.future.set_exception(result.error)
                else:
                    req.future.set_result(result)
            self._note_drained(len(batch))
