"""Injectable time sources for the service layer.

The micro-batcher's behaviour is defined entirely in terms of two
operations — *what time is it* and *wait on this condition for at most
t seconds* — so both live behind one small interface.  Production uses
:class:`SystemClock` (``time.monotonic`` + ``Condition.wait``);
wait-timeout tests use :class:`ManualClock`, where a timed wait
*advances virtual time instead of sleeping*, so a test of "the batch
window expired before ``max_batch`` arrived" runs in microseconds and
cannot flake on a loaded CI runner.
"""

from __future__ import annotations

import threading
import time

__all__ = ["SystemClock", "ManualClock"]


class SystemClock:
    """Real time: monotonic seconds and genuine condition waits."""

    def monotonic(self) -> float:
        return time.monotonic()

    def wait(self, condition: threading.Condition, timeout: float) -> bool:
        """Wait on ``condition`` (lock held) for up to ``timeout`` seconds.

        Returns True when notified, False on timeout — exactly
        :meth:`threading.Condition.wait`.  Callers must re-check their
        predicate either way (notifications are not a message queue).
        """
        return condition.wait(timeout)


class ManualClock:
    """Virtual time for deterministic wait-timeout tests.

    A timed :meth:`wait` first yields to any already-pending
    notification (a zero-timeout condition wait), then advances the
    virtual clock by the full timeout and reports a timeout.  Combined
    with the batcher's re-check loop this makes "the window elapsed"
    indistinguishable from real waiting — minus the wall-clock time.
    :meth:`advance` lets a test move time past a request deadline by
    hand.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move virtual time forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        with self._lock:
            self._now += seconds
            return self._now

    def wait(self, condition: threading.Condition, timeout: float) -> bool:
        # Give an already-sent notify a chance to land (lock is held by
        # the caller, as with any Condition.wait).
        if condition.wait(0.0):
            return True
        self.advance(max(0.0, float(timeout)))
        return False
