"""The localization service's HTTP surface (stdlib only).

:class:`LocalizationHTTPServer` fronts a
:class:`~repro.serve.service.LocalizationService` with a threaded
HTTP/1.1 server and a :class:`~repro.serve.batcher.MicroBatcher`:

* ``POST /v1/locate`` — one observation document; the request parks in
  the micro-batching queue and is answered from a shared
  ``locate_many`` dispatch.  Honors ``deadline_ms`` in the body;
  answers 429 + ``Retry-After`` when admission control rejects, 504
  when the deadline expires first.
* ``POST /v1/locate/batch`` — ``{"observations": [...]}``; already a
  batch, so it goes straight through the vectorized engine.
* ``GET /healthz`` — model / dispatcher / queue-headroom checks plus
  any caller-registered ones, same report shape as
  :class:`~repro.obs.server.ObsServer` (200 ok / 503 degraded).
* ``GET /metrics`` and ``GET /metrics.json`` — the
  :mod:`repro.obs.export` exporters over the live registry.
* ``POST /admin/reload`` — atomic hot-reload of the model, optionally
  from a new ``{"database": path}``.
* ``GET /`` — model card + endpoint index.

Every request lands in ``serve.http_requests{endpoint=...,code=...}``
and ``serve.http_latency_ms{endpoint=...}``; the batcher adds queue
depth, batch-size and wait histograms.  Answer bytes for a locate are
:func:`repro.serve.wire.canonical_json` of the estimate document —
bit-for-bit what a direct ``locate_many`` caller would encode.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.obs.export import render_json, render_prometheus
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, HealthCheck, run_health_checks
from repro.serve.batcher import DeadlineExceededError, MicroBatcher, QueueFullError
from repro.serve.clock import SystemClock
from repro.serve.service import LocalizationService
from repro.serve.wire import (
    WireError,
    canonical_json,
    estimate_to_json,
    observation_from_json,
)

__all__ = ["LocalizationHTTPServer"]

#: Hard cap on request bodies (a locate document is a few KB; anything
#: near this is a mistake or an attack).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Cap on observations per /v1/locate/batch request.
MAX_BATCH_REQUEST = 4096


class _ApiError(Exception):
    """An error with a wire representation (status + JSON body)."""

    def __init__(self, status: int, error: str, detail: str = "", **extra):
        super().__init__(detail or error)
        self.status = status
        self.doc = {"error": error, **({"detail": detail} if detail else {}), **extra}
        self.headers: Dict[str, str] = {}


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 keeps client connections alive between requests — a load
    # generator (or a real deployment behind a proxy) reuses sockets
    # instead of paying a TCP handshake per observation.
    protocol_version = "HTTP/1.1"
    # Each response leaves in two writes (header buffer, then body); with
    # Nagle on, the body segment waits for the client's delayed ACK of
    # the headers — ~40 ms per request on loopback.  TCP_NODELAY turns a
    # latency disaster into sub-millisecond turnarounds.
    disable_nagle_algorithm = True
    server: "LocalizationHTTPServer._HTTPServer"

    # -- plumbing --------------------------------------------------------
    def _reply(self, status: int, body: bytes, content_type: str = "application/json",
               headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _ApiError(400, "empty_body", "POST body must be a JSON document")
        if length > MAX_BODY_BYTES:
            raise _ApiError(413, "body_too_large", f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise _ApiError(400, "bad_json", str(exc)) from None

    def log_message(self, fmt, *args):  # noqa: D102 - metrics, not stderr noise
        pass

    # -- routing ---------------------------------------------------------
    def do_GET(self):  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self):  # noqa: N802 - http.server API
        self._route("POST")

    def _route(self, method: str) -> None:
        owner = self.server.owner
        path = self.path.split("?", 1)[0]
        routes = {
            ("POST", "/v1/locate"): ("locate", owner._handle_locate),
            ("POST", "/v1/locate/batch"): ("locate_batch", owner._handle_locate_batch),
            ("POST", "/admin/reload"): ("reload", owner._handle_reload),
            ("GET", "/healthz"): ("healthz", owner._handle_healthz),
            ("GET", "/metrics"): ("metrics", owner._handle_metrics),
            ("GET", "/metrics.json"): ("metrics_json", owner._handle_metrics_json),
            ("GET", "/"): ("index", owner._handle_index),
        }
        entry = routes.get((method, path))
        if entry is None:
            endpoint = "unknown"
            status, body, content_type, headers = (
                404,
                canonical_json({"error": "not_found", "paths": sorted(p for _, p in routes)}),
                "application/json",
                {},
            )
        else:
            endpoint, handler = entry
            t0 = time.perf_counter()
            try:
                status, body, content_type, headers = handler(self)
            except _ApiError as exc:
                status, body, content_type, headers = (
                    exc.status, canonical_json(exc.doc), "application/json", exc.headers,
                )
            except Exception as exc:  # noqa: BLE001 - the server must keep serving
                obs.counter("serve.http_errors", endpoint=endpoint,
                            kind=type(exc).__name__).inc()
                status, body, content_type, headers = (
                    500,
                    canonical_json({"error": "internal", "detail": f"{type(exc).__name__}: {exc}"}),
                    "application/json",
                    {},
                )
            obs.histogram("serve.http_latency_ms", endpoint=endpoint).observe(
                1000.0 * (time.perf_counter() - t0)
            )
        obs.counter("serve.http_requests", endpoint=endpoint, code=str(status)).inc()
        try:
            self._reply(status, body, content_type, headers)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up first; its problem, not the service's


_Route = Tuple[int, bytes, str, Dict[str, str]]


class LocalizationHTTPServer:
    """Serve a :class:`LocalizationService` over HTTP with micro-batching.

    Parameters
    ----------
    service:
        The model owner; must be loaded (or loadable via its reload).
    host, port:
        Bind address; ``port=0`` picks a free port (read :attr:`url`).
    max_batch, max_wait_ms, max_queue:
        Micro-batcher knobs (see :class:`~repro.serve.batcher.MicroBatcher`).
        ``max_batch=1`` disables coalescing — the serving bench's baseline.
    default_deadline_ms:
        Deadline applied to locate requests that do not send their own
        ``deadline_ms`` (None: wait as long as it takes).
    clock:
        Injectable time source shared with the batcher.

    Use as a context manager or ``start()``/``stop()``.
    """

    class _HTTPServer(ThreadingHTTPServer):
        daemon_threads = True
        # socketserver's default listen backlog is 5: a burst of N>5
        # clients connecting at once gets connection-reset at the door.
        request_queue_size = 128
        owner: "LocalizationHTTPServer"

        def service_actions(self):
            self.owner._ready.set()  # same event-based readiness as ObsServer

    def __init__(
        self,
        service: LocalizationService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        max_wait_ms: float = 5.0,
        max_queue: int = 256,
        default_deadline_ms: Optional[float] = None,
        clock=None,
        retry_after_s: int = 1,
    ):
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self._clock = clock if clock is not None else SystemClock()
        self.default_deadline_ms = default_deadline_ms
        self.retry_after_s = int(retry_after_s)
        self.batcher = MicroBatcher(
            service.locate_many,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            clock=self._clock,
            name="http",
        )
        self._checks: List[Tuple[str, HealthCheck]] = [
            ("model", service.health_check),
            ("dispatcher", self._dispatcher_check),
            ("queue", self._queue_check),
        ]
        self._httpd: Optional[LocalizationHTTPServer._HTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- health ----------------------------------------------------------
    def _dispatcher_check(self):
        return self.batcher.alive, f"micro-batcher thread alive: {self.batcher.alive}"

    def _queue_check(self):
        depth, cap = self.batcher.queue_depth(), self.batcher.max_queue
        return depth < cap, {"depth": depth, "capacity": cap}

    def add_health_check(self, name: str, check: HealthCheck) -> "LocalizationHTTPServer":
        """Register an extra named ``/healthz`` check (drift monitors...)."""
        self._checks.append((name, check))
        return self

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "LocalizationHTTPServer":
        if self._httpd is not None:
            raise RuntimeError("LocalizationHTTPServer already started")
        self.service.model()  # fail fast: no point binding without a model
        self.batcher.start()
        httpd = LocalizationHTTPServer._HTTPServer(
            (self.host, self._requested_port), _Handler
        )
        httpd.owner = self
        self._httpd = httpd
        self._ready.clear()
        self._thread = threading.Thread(
            target=lambda: httpd.serve_forever(poll_interval=0.05),
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=5.0)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.batcher.stop()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "LocalizationHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("LocalizationHTTPServer is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- endpoint handlers ----------------------------------------------
    def _handle_locate(self, handler: _Handler) -> _Route:
        doc = handler._read_json()
        try:
            observation = observation_from_json(doc)
        except WireError as exc:
            raise _ApiError(400, "bad_observation", str(exc)) from None
        deadline_ms = doc.get("deadline_ms", self.default_deadline_ms)
        deadline = None
        budget_s = None
        if deadline_ms is not None:
            try:
                budget_s = float(deadline_ms) / 1000.0
            except (TypeError, ValueError):
                raise _ApiError(400, "bad_deadline", f"deadline_ms not a number: {deadline_ms!r}") from None
            if budget_s <= 0:
                raise _ApiError(400, "bad_deadline", f"deadline_ms must be > 0, got {deadline_ms}")
            deadline = self._clock.monotonic() + budget_s
        try:
            future = self.batcher.submit(observation, deadline=deadline)
        except QueueFullError as exc:
            err = _ApiError(429, "queue_full", str(exc), retry_after_s=self.retry_after_s)
            err.headers["Retry-After"] = str(self.retry_after_s)
            raise err from None
        try:
            # The dispatcher enforces the queue-side deadline; the extra
            # slack here only bounds a dispatch that is itself slow.
            estimate = future.result(
                timeout=None if budget_s is None else budget_s + 30.0
            )
        except DeadlineExceededError as exc:
            raise _ApiError(504, "deadline_exceeded", str(exc)) from None
        return 200, canonical_json(estimate_to_json(estimate)), "application/json", {}

    def _handle_locate_batch(self, handler: _Handler) -> _Route:
        doc = handler._read_json()
        if not isinstance(doc, dict) or not isinstance(doc.get("observations"), list):
            raise _ApiError(400, "bad_request", "body must be {'observations': [...]}")
        docs = doc["observations"]
        if not docs:
            raise _ApiError(400, "bad_request", "'observations' must not be empty")
        if len(docs) > MAX_BATCH_REQUEST:
            raise _ApiError(
                413, "batch_too_large",
                f"{len(docs)} observations exceed the {MAX_BATCH_REQUEST} cap; split the request",
            )
        try:
            observations = [observation_from_json(d) for d in docs]
        except WireError as exc:
            raise _ApiError(400, "bad_observation", str(exc)) from None
        # Already a batch: no coalescing window to gain, straight through
        # the chunked/sharded engine.
        estimates = self.service.locate_many(observations)
        body = canonical_json(
            {"estimates": [estimate_to_json(e) for e in estimates]}
        )
        return 200, body, "application/json", {}

    def _handle_reload(self, handler: _Handler) -> _Route:
        length = int(handler.headers.get("Content-Length") or 0)
        database = None
        if length > 0:
            doc = handler._read_json()
            if not isinstance(doc, dict):
                raise _ApiError(400, "bad_request", "reload body must be a JSON object")
            database = doc.get("database")
        try:
            info = self.service.reload(database)
        except Exception as exc:  # noqa: BLE001 - old model keeps serving
            raise _ApiError(
                500, "reload_failed", f"{type(exc).__name__}: {exc}", serving="previous model",
            ) from None
        return 200, canonical_json({"reloaded": True, "model": info}), "application/json", {}

    def _handle_healthz(self, handler: _Handler) -> _Route:
        ok, report = run_health_checks(self._checks)
        body = (json.dumps(report, indent=2, sort_keys=True) + "\n").encode("utf-8")
        return (200 if ok else 503), body, "application/json", {}

    def _handle_metrics(self, handler: _Handler) -> _Route:
        body = render_prometheus(obs.snapshot()).encode("utf-8")
        return 200, body, PROMETHEUS_CONTENT_TYPE, {}

    def _handle_metrics_json(self, handler: _Handler) -> _Route:
        return 200, render_json(obs.snapshot()).encode("utf-8"), "application/json", {}

    def _handle_index(self, handler: _Handler) -> _Route:
        doc = {
            "service": "repro-localization",
            "model": self.service.describe(),
            "batching": {
                "max_batch": self.batcher.max_batch,
                "max_wait_ms": 1000.0 * self.batcher.max_wait_s,
                "max_queue": self.batcher.max_queue,
            },
            "endpoints": [
                "POST /v1/locate",
                "POST /v1/locate/batch",
                "POST /admin/reload",
                "GET /healthz",
                "GET /metrics",
                "GET /metrics.json",
            ],
        }
        return 200, canonical_json(doc), "application/json", {}
