"""The localization service's HTTP surface (stdlib only).

:class:`LocalizationHTTPServer` fronts a
:class:`~repro.serve.service.LocalizationService` with a threaded
HTTP/1.1 server and a :class:`~repro.serve.batcher.MicroBatcher`:

* ``POST /v1/locate`` — one observation document; the request parks in
  the micro-batching queue and is answered from a shared
  ``locate_many`` dispatch.  Honors a deadline from the
  ``X-Deadline-Ms`` header and/or ``deadline_ms`` in the body (the
  tighter one wins); answers 429 + ``Retry-After`` when admission
  control rejects, 504 when the deadline expires first — including
  *at enqueue time*, so a dead-on-arrival request never occupies a
  bounded-queue slot.
* ``POST /v1/locate/batch`` — ``{"observations": [...]}``; already a
  batch, so it goes straight through the vectorized engine.  Sheds
  first under pressure (bulk priority class).
* ``POST /v1/track/{session}`` — one scan into a *stateful* tracking
  session (see :mod:`repro.serve.sessions`): first POST creates the
  session's filter, every POST rides the ``track`` micro-batcher so
  concurrent sessions share one vectorized measurement pass.  Same
  deadline and admission semantics as ``/v1/locate``.  ``GET`` reads
  the current estimate, ``DELETE`` closes the session (exactly once).
* ``GET /healthz`` — model / dispatcher / queue-headroom / breaker /
  lifecycle checks plus any caller-registered ones, same report shape
  as :class:`~repro.obs.server.ObsServer` (200 ok / 503 degraded; a
  draining instance reports 503 so load balancers eject it).
* ``GET /metrics`` and ``GET /metrics.json`` — the
  :mod:`repro.obs.export` exporters over the live registry.  A scraper
  accepting ``application/openmetrics-text`` gets real cumulative-le
  histograms whose latency buckets carry trace-id exemplars.
* ``GET /debug/traces`` (+ ``?trace_id=``) — the flight recorder's
  retained traces (fleet-merged when running under ``--workers N``).

Every request is traced end to end: the edge adopts the client's W3C
``traceparent`` (or mints a :class:`~repro.obs.TraceContext`), the
edge span wraps the handler, the micro-batcher links the coalesced
request spans into its dispatch span, engine chunk/shard spans nest
beneath, and shard worker processes ship their spans back under the
same trace id.  ``X-Request-Id`` is echoed (or assigned) on **every**
response — errors and early rejects included — and appears in JSON
error bodies; admission/deadline/drain decisions land as edge-span
attributes so a rejected request still leaves a one-span trace.
* ``POST /admin/reload`` — atomic hot-reload of the model, optionally
  from a new ``{"database": path}``.
* Fleet mode (constructed with a :class:`~repro.serve.registry.
  ModelRegistry`): ``/v1/sites/{site}/locate[|/batch]``, site-scoped
  ``/v1/sites/{site}/track/{session}`` and ``/v1/sites/{site}/admin/
  reload``, plus ``GET /v1/sites`` (the registry card).  The legacy
  single-site paths above alias the registry's default site, request
  metrics and spans gain a ``site`` label, and each request holds a
  lease pinning its site's runtime so eviction never races in-flight
  work (see docs/sites.md).
* ``POST /admin/drain`` — graceful drain: stop accepting data-plane
  work, flush the batcher, finish in-flight requests under the drain
  deadline (see :meth:`LocalizationHTTPServer.drain`).
* ``GET /`` — model card + endpoint index.

Overload behaviour is adaptive, not constant: an
:class:`~repro.serve.resilience.AdmissionController` sheds by priority
class (control-plane endpoints are never shed) on queue depth and
rolling p99 latency, and every 429/503 carries a ``Retry-After``
computed from the batcher's live drain rate
(:func:`~repro.serve.resilience.compute_retry_after_s`).  A
:class:`~repro.serve.resilience.ChaosPolicy` can inject dispatch
latency, connection resets and slow-loris response writes for
resilience tests (``repro serve --chaos``).

Every request lands in ``serve.http_requests{endpoint=...,code=...}``
and ``serve.http_latency_ms{endpoint=...}``; the batcher adds queue
depth, batch-size and wait histograms.  Answer bytes for a locate are
:func:`repro.serve.wire.canonical_json` of the estimate document —
bit-for-bit what a direct ``locate_many`` caller would encode.
"""

from __future__ import annotations

import json
import math
import re
import socket
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import SimpleNamespace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.obs.export import (
    OPENMETRICS_CONTENT_TYPE,
    render_json,
    render_openmetrics,
    render_prometheus,
)
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, HealthCheck, run_health_checks
from repro.obs.trace import SNAPSHOT_SCHEMA as TRACE_SCHEMA
from repro.serve.batcher import DeadlineExceededError, MicroBatcher, QueueFullError
from repro.serve.clock import SystemClock
from repro.serve.registry import ModelRegistry, UnknownSiteError
from repro.serve.resilience import (
    AdmissionController,
    ChaosPolicy,
    Priority,
    compute_retry_after_s,
)
from repro.serve.service import LocalizationService
from repro.serve.sessions import (
    BadTimestampError,
    SessionClosedError,
    TrackingSessions,
    UnknownSessionError,
)
from repro.serve.wire import (
    WireError,
    canonical_json,
    estimate_to_json,
    observation_from_json,
    track_estimate_to_json,
)

__all__ = ["LocalizationHTTPServer"]

#: Header carrying the client's remaining deadline budget in
#: milliseconds; flows client → HTTP → MicroBatcher → dispatch, and
#: :class:`repro.serve.client.ServiceClient` re-stamps the *remaining*
#: budget on every retry hop.
DEADLINE_HEADER = "X-Deadline-Ms"

#: W3C trace-context header; parsed leniently (a malformed value mints
#: a fresh context instead of erroring).
TRACEPARENT_HEADER = "traceparent"

#: Client-correlatable request id: echoed (or assigned) on *every*
#: response — including 4xx/5xx and early-reject paths — and injected
#: into JSON error bodies, so a client's ``ClientReport`` joins against
#: the server-side trace.  When the server assigns one, it *is* the
#: trace id.
REQUEST_ID_HEADER = "X-Request-Id"

#: Trace id of the request, echoed on every response for joining.
TRACE_ID_HEADER = "X-Trace-Id"

#: Request ids are client-chosen; keep them boring (else reassigned).
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")

#: Control-plane endpoints that still record a trace (admin actions are
#: exactly what an operator wants in the flight recorder).
_TRACED_CONTROL = frozenset({"reload", "drain"})

#: Endpoints that carry localization traffic (shed / drained / chaos'd);
#: everything else is control plane and always answered.  Track *reads*
#: (GET) and closes (DELETE) stay control plane so clients can fetch a
#: last estimate and clean up even while an instance drains.
DATA_PLANE = frozenset({"locate", "locate_batch", "track"})

#: Path prefix of the tracking-session endpoints.
TRACK_PREFIX = "/v1/track/"

#: Path prefix of the multi-site (fleet) endpoints; only routed when
#: the server fronts a :class:`~repro.serve.registry.ModelRegistry`.
SITES_PREFIX = "/v1/sites/"

#: Session ids are client-chosen path segments; keep them boring.
_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")

#: Site ids live in paths and metric labels; same discipline.
_SITE_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")

#: Endpoints whose metric series / span attributes carry a ``site``
#: label in fleet mode.  Control-plane scrapes (metrics, health, index)
#: stay unlabelled, and single-site servers never add the label at all
#: — their series names are byte-compatible with the pre-fleet ones.
_SITE_LABELLED = frozenset(
    {"locate", "locate_batch", "track", "track_status", "track_close", "reload"}
)

#: Hard cap on request bodies (a locate document is a few KB; anything
#: near this is a mistake or an attack).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Cap on observations per /v1/locate/batch request.
MAX_BATCH_REQUEST = 4096


class _ApiError(Exception):
    """An error with a wire representation (status + JSON body)."""

    def __init__(self, status: int, error: str, detail: str = "", **extra):
        super().__init__(detail or error)
        self.status = status
        self.doc = {"error": error, **({"detail": detail} if detail else {}), **extra}
        self.headers: Dict[str, str] = {}


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 keeps client connections alive between requests — a load
    # generator (or a real deployment behind a proxy) reuses sockets
    # instead of paying a TCP handshake per observation.
    protocol_version = "HTTP/1.1"
    # Each response leaves in two writes (header buffer, then body); with
    # Nagle on, the body segment waits for the client's delayed ACK of
    # the headers — ~40 ms per request on loopback.  TCP_NODELAY turns a
    # latency disaster into sub-millisecond turnarounds.
    disable_nagle_algorithm = True
    server: "LocalizationHTTPServer._HTTPServer"

    # -- plumbing --------------------------------------------------------
    def _reply(self, status: int, body: bytes, content_type: str = "application/json",
               headers: Optional[Dict[str, str]] = None, trickle_s: float = 0.0) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        # Request identity rides on every reply this request produces —
        # success, error, 404 and early rejects alike.
        for key, value in getattr(self, "_trace_headers", {}).items():
            self.send_header(key, value)
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        if trickle_s > 0.0 and body:
            # Chaos slow-loris: dribble the body out in small chunks so
            # a client without a read timeout would hang here.
            step = max(1, len(body) // 8)
            for i in range(0, len(body), step):
                self.wfile.write(body[i:i + step])
                self.wfile.flush()
                time.sleep(trickle_s)
        else:
            self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _ApiError(400, "empty_body", "POST body must be a JSON document")
        if length > MAX_BODY_BYTES:
            raise _ApiError(413, "body_too_large", f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        self._body_read = True
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise _ApiError(400, "bad_json", str(exc)) from None

    def _discard_body(self) -> None:
        """Consume an unread request body before an early reply.

        Paths that answer without ever reading the body — the draining
        503, an admission shed raised before parsing, a 404 with a
        payload — would otherwise leave the body bytes in the socket,
        where a keep-alive client's *next* request line would be parsed
        starting mid-payload (a framing desync that turns every later
        request on the connection into a 501).  Oversized bodies are
        not worth reading to save the connection: hang up instead.
        """
        if self._body_read:
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                self.close_connection = True
                return
            remaining -= len(chunk)
        self._body_read = True

    def log_message(self, fmt, *args):  # noqa: D102 - metrics, not stderr noise
        pass

    # -- routing ---------------------------------------------------------
    def do_GET(self):  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self):  # noqa: N802 - http.server API
        self._route("POST")

    def do_DELETE(self):  # noqa: N802 - http.server API
        self._route("DELETE")

    def _route(self, method: str) -> None:
        owner = self.server.owner
        self._body_read = False  # per-request: the handler instance spans a connection
        path = self.path.split("?", 1)[0]
        routes = {
            ("POST", "/v1/locate"): ("locate", owner._handle_locate),
            ("POST", "/v1/locate/batch"): ("locate_batch", owner._handle_locate_batch),
            ("POST", "/admin/reload"): ("reload", owner._handle_reload),
            ("POST", "/admin/drain"): ("drain", owner._handle_drain),
            ("GET", "/healthz"): ("healthz", owner._handle_healthz),
            ("GET", "/metrics"): ("metrics", owner._handle_metrics),
            ("GET", "/metrics.json"): ("metrics_json", owner._handle_metrics_json),
            ("GET", "/debug/traces"): ("debug_traces", owner._handle_debug_traces),
            ("GET", "/"): ("index", owner._handle_index),
        }
        if owner.registry is not None:
            routes[("GET", "/v1/sites")] = ("sites", owner._handle_sites)
        entry = routes.get((method, path))
        if entry is None and path.startswith(TRACK_PREFIX) and len(path) > len(TRACK_PREFIX):
            session_id = path[len(TRACK_PREFIX):]
            track_routes = {
                "POST": ("track", owner._handle_track_step),
                "GET": ("track_status", owner._handle_track_get),
                "DELETE": ("track_close", owner._handle_track_close),
            }
            if method in track_routes:
                endpoint_name, track_handler = track_routes[method]
                entry = (
                    endpoint_name,
                    lambda h, _f=track_handler, _sid=session_id: _f(h, _sid),
                )
        # Fleet routes: /v1/sites/{site}/... — legacy paths above stay
        # valid and alias the registry's default site.
        site_label: Optional[str] = None
        if owner.registry is not None:
            site_label = owner.registry.default_site
            if (
                entry is None
                and path.startswith(SITES_PREFIX)
                and len(path) > len(SITES_PREFIX)
            ):
                site_id, _, tail = path[len(SITES_PREFIX):].partition("/")
                entry = owner._site_entry(method, site_id, tail)
                # Label with the site only when it is a real fleet
                # member: client-invented ids must not mint series.
                site_label = (
                    site_id
                    if _SITE_ID_RE.match(site_id) and site_id in owner.registry
                    else "unknown"
                )
        trickle_s = 0.0
        # Request identity: adopt the client's W3C traceparent (or mint
        # a fresh context) and echo/assign X-Request-Id.  The headers
        # land on every reply via _reply, including the 404 and the
        # early-reject paths below.
        client_ctx = obs.TraceContext.from_traceparent(
            self.headers.get(TRACEPARENT_HEADER)
        )
        ctx = client_ctx if client_ctx is not None else obs.TraceContext.mint()
        request_id = (self.headers.get(REQUEST_ID_HEADER) or "").strip()
        if not _REQUEST_ID_RE.match(request_id):
            request_id = ctx.trace_id
        self._trace_headers = {
            REQUEST_ID_HEADER: request_id,
            TRACE_ID_HEADER: ctx.trace_id,
        }
        if entry is None:
            endpoint = "unknown"
            req_labels: Dict[str, str] = {"endpoint": endpoint}
            known = {p for _, p in routes} | {TRACK_PREFIX + "{session}"}
            if owner.registry is not None:
                known |= {SITES_PREFIX + "{site}/locate[|/batch]",
                          SITES_PREFIX + "{site}/track/{session}",
                          SITES_PREFIX + "{site}/admin/reload"}
            status, body, content_type, headers = (
                404,
                canonical_json(
                    {"error": "not_found", "paths": sorted(known),
                     "request_id": request_id}
                ),
                "application/json",
                {},
            )
        else:
            endpoint, handler = entry
            req_labels = {"endpoint": endpoint}
            span_extra: Dict[str, str] = {}
            if site_label is not None and endpoint in _SITE_LABELLED:
                req_labels["site"] = site_label
                span_extra["site"] = site_label
            data_plane = endpoint in DATA_PLANE
            chaos = owner.chaos
            if data_plane and chaos is not None and chaos.reset_connection():
                # Injected connection reset: hang up without an answer.
                # The one fault class the availability floor does NOT
                # forgive when chaos isn't asking for it explicitly.
                obs.counter("serve.http_requests", code="reset", **req_labels).inc()
                self.close_connection = True
                return
            # Data-plane requests (and admin actions, and anything the
            # client explicitly asked to trace) leave a trace in the
            # flight recorder; metrics/health scrapes stay untraced so
            # the ok-ring holds requests, not monitoring noise.
            traced = (
                data_plane or client_ctx is not None or endpoint in _TRACED_CONTROL
            )
            recorder = obs.get_recorder() if traced else None
            if recorder is not None:
                recorder.begin(
                    ctx, endpoint=endpoint, method=method, request_id=request_id
                )
            if data_plane and not owner._admit_data_plane():
                status, body, content_type, headers = owner._draining_response(request_id)
                if traced:
                    # A drained-away request still leaves a one-span
                    # trace saying why it never ran.
                    with obs.bind(ctx):
                        with obs.span(
                            "serve.request", endpoint=endpoint, method=method,
                            decision="draining", http_status=status, **span_extra,
                        ):
                            pass
                if recorder is not None:
                    recorder.finish(
                        ctx.trace_id, status="draining", pin=True, reason="draining"
                    )
                obs.counter("serve.http_requests", code=str(status), **req_labels).inc()
                self._discard_body()
                try:
                    self._reply(status, body, content_type, headers)
                except (BrokenPipeError, ConnectionResetError):
                    pass
                return

            def invoke() -> _Route:
                try:
                    return handler(self)
                except _ApiError as exc:
                    exc.doc.setdefault("request_id", request_id)
                    # The admission/breaker/deadline decision lands on
                    # the edge span, so a rejected request's one-span
                    # trace says why (shed, deadline_expired, ...).
                    obs.annotate(
                        decision=str(exc.doc.get("error")), http_status=exc.status
                    )
                    return (
                        exc.status, canonical_json(exc.doc), "application/json",
                        exc.headers,
                    )
                except Exception as exc:  # noqa: BLE001 - the server must keep serving
                    obs.counter("serve.http_errors", endpoint=endpoint,
                                kind=type(exc).__name__).inc()
                    obs.annotate(decision="internal_error", http_status=500)
                    return (
                        500,
                        canonical_json({
                            "error": "internal",
                            "detail": f"{type(exc).__name__}: {exc}",
                            "request_id": request_id,
                        }),
                        "application/json",
                        {},
                    )

            t0 = time.perf_counter()
            try:
                if traced:
                    with obs.bind(ctx):
                        with obs.span(
                            "serve.request", endpoint=endpoint, method=method,
                            **span_extra,
                        ):
                            status, body, content_type, headers = invoke()
                else:
                    status, body, content_type, headers = invoke()
            finally:
                if data_plane:
                    owner._exit_data_plane()
            latency_ms = 1000.0 * (time.perf_counter() - t0)
            obs.histogram("serve.http_latency_ms", **req_labels).observe(
                latency_ms, trace_id=ctx.trace_id if traced else None
            )
            if recorder is not None:
                trace_status = "ok" if status < 400 else f"http_{status}"
                recorder.finish(
                    ctx.trace_id,
                    status=trace_status,
                    wall_ms=latency_ms,
                    reason="deadline_miss" if status == 504 else None,
                )
            if data_plane and status != 429:
                # Feed the admission controller's rolling p99 with
                # latencies of requests that actually traversed the
                # service (shed fast-rejects would dilute the signal).
                owner.admission.note_latency_ms(latency_ms)
            if data_plane and chaos is not None and chaos.slowloris():
                trickle_s = chaos.slowloris_delay_s
        obs.counter("serve.http_requests", code=str(status), **req_labels).inc()
        self._discard_body()
        try:
            self._reply(status, body, content_type, headers, trickle_s=trickle_s)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up first; its problem, not the service's


_Route = Tuple[int, bytes, str, Dict[str, str]]


class LocalizationHTTPServer:
    """Serve a :class:`LocalizationService` over HTTP with micro-batching.

    Parameters
    ----------
    service:
        The model owner; must be loaded (or loadable via its reload).
    host, port:
        Bind address; ``port=0`` picks a free port (read :attr:`url`).
    max_batch, max_wait_ms, max_queue:
        Micro-batcher knobs (see :class:`~repro.serve.batcher.MicroBatcher`).
        ``max_batch=1`` disables coalescing — the serving bench's baseline.
    default_deadline_ms:
        Deadline applied to locate requests that do not send their own
        (header or body; None: wait as long as it takes).
    clock:
        Injectable time source shared with the batcher.
    retry_after_s:
        *Floor* on the adaptive ``Retry-After`` hint.  The served value
        is computed per rejection from the queue depth and the
        batcher's live drain rate; this floor is what clients see
        before any drain-rate data exists.
    admission:
        A ready :class:`~repro.serve.resilience.AdmissionController`,
        or None to build one from ``max_queue`` and ``p99_limit_ms``.
    p99_limit_ms:
        Optional latency brake for the built-in admission controller:
        bulk traffic sheds when the rolling p99 exceeds it, normal
        traffic at twice it.
    chaos:
        Optional :class:`~repro.serve.resilience.ChaosPolicy` injecting
        dispatch latency / connection resets / slow-loris writes (tier
        faults are the service's business — pass the policy there too).
    drain_deadline_s:
        Default bound on how long :meth:`drain` waits for in-flight
        requests before reporting them unfinished.
    track_filter, session_capacity, session_ttl_s:
        Tracking-session knobs: which filter ``/v1/track`` sessions run
        (kalman / bayes / particle), the session-store bound (LRU
        evicts beyond it) and the idle TTL.  Alternatively pass a ready
        :class:`~repro.serve.sessions.TrackingSessions` as ``sessions``
        (tests inject manual clocks this way) and these are ignored.
    reuse_port:
        Bind with ``SO_REUSEPORT`` so N worker processes can share one
        listening port and the kernel load-balances accepted
        connections among them (``repro serve --workers N``).
    metrics_source:
        Optional zero-arg callable returning the metrics snapshot for
        ``/metrics`` / ``/metrics.json`` instead of the process-local
        registry — the multi-process supervisor plugs in the fleet
        merge here so any worker answers with fleet totals.
    metrics_state_source:
        Optional zero-arg callable returning a full
        ``MetricsRegistry.dump_state`` (buckets + exemplars) for the
        OpenMetrics content negotiation on ``/metrics`` — the fleet
        analogue of ``metrics_source``, needed because a snapshot
        collapses the buckets an OpenMetrics histogram (and its
        exemplars) is made of.
    trace_source:
        Optional zero-arg callable returning a flight-recorder
        snapshot doc for ``GET /debug/traces`` instead of the
        process-local recorder — the multi-process supervisor plugs in
        the fleet-merged view so any worker can answer for a trace
        that lives in a sibling's recorder.
    admin_hook:
        Optional callable invoked after a *locally handled* admin
        action (``{"cmd": "reload"/"drain", ...}``) so a worker can
        broadcast it to its siblings.  Failures are counted, never
        surfaced to the admin caller.
    registry:
        Optional :class:`~repro.serve.registry.ModelRegistry` — fleet
        mode.  The server pins the registry's default site for its
        lifetime (the legacy single-site routes alias it), routes
        ``/v1/sites/{site}/...`` through per-site runtimes (each with
        its own micro-batcher, tracking sessions and breaker board —
        batches never coalesce across sites), and adds a ``site``
        label to request metrics and trace spans.  ``service`` may be
        None; the batching/tracking knobs above are pushed into the
        registry's per-site runtime config where not already set.
        ``stop()``/``drain()`` close the registry (it is single-use,
        like the server).

    Use as a context manager or ``start()``/``stop()``.
    """

    class _HTTPServer(ThreadingHTTPServer):
        daemon_threads = True
        # socketserver's default listen backlog is 5: a burst of N>5
        # clients connecting at once gets connection-reset at the door.
        request_queue_size = 128
        owner: "LocalizationHTTPServer"

        def service_actions(self):
            self.owner._ready.set()  # same event-based readiness as ObsServer

    def __init__(
        self,
        service: Optional[LocalizationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        max_wait_ms: float = 5.0,
        max_queue: int = 256,
        default_deadline_ms: Optional[float] = None,
        clock=None,
        retry_after_s: int = 1,
        admission: Optional[AdmissionController] = None,
        p99_limit_ms: Optional[float] = None,
        chaos: Optional[ChaosPolicy] = None,
        drain_deadline_s: float = 10.0,
        track_filter: str = "kalman",
        session_capacity: int = 10000,
        session_ttl_s: float = 300.0,
        sessions: Optional[TrackingSessions] = None,
        reuse_port: bool = False,
        metrics_source: Optional[Callable[[], dict]] = None,
        metrics_state_source: Optional[Callable[[], dict]] = None,
        trace_source: Optional[Callable[[], dict]] = None,
        admin_hook: Optional[Callable[[Dict[str, object]], None]] = None,
        registry: Optional[ModelRegistry] = None,
    ):
        if service is None and registry is None:
            raise ValueError("pass a LocalizationService or a ModelRegistry")
        if registry is not None and sessions is not None:
            raise ValueError("fleet mode builds per-site sessions; don't inject one")
        self.registry = registry
        self.host = host
        self.reuse_port = bool(reuse_port)
        self.metrics_source = metrics_source
        self.metrics_state_source = metrics_state_source
        self.trace_source = trace_source
        self.admin_hook = admin_hook
        self._requested_port = int(port)
        self._clock = clock if clock is not None else SystemClock()
        self.default_deadline_ms = default_deadline_ms
        self.retry_after_s = int(retry_after_s)
        self.admission = admission if admission is not None else AdmissionController(
            max_queue=max_queue, p99_limit_ms=p99_limit_ms
        )
        self.chaos = chaos
        self.drain_deadline_s = float(drain_deadline_s)
        if registry is not None:
            # Fleet mode: per-site runtimes own batchers and sessions.
            # Push this server's knobs into the registry's runtime
            # config (where the caller didn't set their own), then pin
            # the default site for the server's lifetime — the legacy
            # routes and the health checks run against it, and it can
            # never be evicted out from under them.
            registry.configure_runtimes(
                batch_config={
                    "max_batch": max_batch,
                    "max_wait_ms": max_wait_ms,
                    "max_queue": max_queue,
                },
                track_config={
                    "kind": track_filter,
                    "capacity": session_capacity,
                    "ttl_s": session_ttl_s,
                    "max_batch": max_batch,
                    "max_wait_ms": max_wait_ms,
                    "max_queue": max_queue,
                },
                clock=self._clock,
            )
            self._default_runtime: Optional[object] = registry.acquire(None)
            service = self._default_runtime.service
            self.batcher = self._default_runtime.batcher
            self.sessions = self._default_runtime.sessions
        else:
            self._default_runtime = None
            self.batcher = MicroBatcher(
                service.locate_many,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                max_queue=max_queue,
                clock=self._clock,
                name="http",
            )
            # Stateful tracking sessions share the batching knobs and (by
            # default) the clock, so deadline math is one coordinate system.
            self.sessions = sessions if sessions is not None else TrackingSessions(
                service,
                kind=track_filter,
                capacity=session_capacity,
                ttl_s=session_ttl_s,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                max_queue=max_queue,
                clock=self._clock,
            )
        self.service = service
        # Leases against this view make the single-site handlers and
        # the fleet handlers one code path (site_id None ⇒ no labels).
        self._single_view = SimpleNamespace(
            service=service, batcher=self.batcher, sessions=self.sessions,
            site_id=None,
        )
        self._checks: List[Tuple[str, HealthCheck]] = [
            ("model", service.health_check),
            ("dispatcher", self._dispatcher_check),
            ("queue", self._queue_check),
            ("breakers", service.breaker_health),
            ("sessions", self._sessions_check),
            ("lifecycle", self._lifecycle_check),
        ]
        if registry is not None:
            self._checks.append(("registry", self._registry_check))
        self._httpd: Optional[LocalizationHTTPServer._HTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        # Drain lifecycle: data-plane requests register in/out so drain
        # can wait for the last one; the flag and the counter share one
        # condition so admit-vs-drain cannot race.
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._draining = False
        self._drain_report: Optional[Dict[str, object]] = None

    # -- health ----------------------------------------------------------
    def _dispatcher_check(self):
        if self._draining:
            # A drained batcher is stopped by design; don't double-report.
            return True, "micro-batcher drained (instance draining)"
        return self.batcher.alive, f"micro-batcher thread alive: {self.batcher.alive}"

    def _queue_check(self):
        depth, cap = self.batcher.queue_depth(), self.batcher.max_queue
        return depth < cap, {"depth": depth, "capacity": cap}

    def _sessions_check(self):
        """Session-store occupancy (+ the track dispatcher's liveness)."""
        ok, detail = self.sessions.health_check()
        if not self._draining and self._httpd is not None:
            ok = ok and self.sessions.alive
        return ok, detail

    def _registry_check(self):
        """Fleet occupancy: resident sites / capacity / loads in flight."""
        status = self.registry.status()
        return True, {
            "resident": len(status["resident"]),
            "capacity": status["capacity"],
            "default": status["default"],
            "loading": status["loading"],
            "evictions": status["evictions"],
        }

    def _lifecycle_check(self):
        if self._draining:
            # Deliberately unhealthy: a draining instance must drop out
            # of its load balancer's rotation.
            return False, {"phase": "draining", "report": self._drain_report}
        return True, {"phase": "serving"}

    def add_health_check(self, name: str, check: HealthCheck) -> "LocalizationHTTPServer":
        """Register an extra named ``/healthz`` check (drift monitors...)."""
        self._checks.append((name, check))
        return self

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "LocalizationHTTPServer":
        if self._httpd is not None:
            raise RuntimeError("LocalizationHTTPServer already started")
        self.service.model()  # fail fast: no point binding without a model
        if self.registry is None:
            # Fleet runtimes start their own dispatchers on first use.
            self.batcher.start()
            self.sessions.start()
        if self.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise RuntimeError("SO_REUSEPORT is not available on this platform")
            # Manual bind dance (bind_and_activate=False) so the option
            # lands on the socket *before* bind — required for the
            # kernel to admit a second worker onto the same port.
            # (ThreadingHTTPServer grew allow_reuse_port only in 3.11;
            # this works on every supported Python.)
            httpd = LocalizationHTTPServer._HTTPServer(
                (self.host, self._requested_port), _Handler, bind_and_activate=False
            )
            try:
                httpd.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                httpd.server_bind()
                httpd.server_activate()
            except BaseException:
                httpd.server_close()
                raise
        else:
            httpd = LocalizationHTTPServer._HTTPServer(
                (self.host, self._requested_port), _Handler
            )
        httpd.owner = self
        self._httpd = httpd
        self._ready.clear()
        self._thread = threading.Thread(
            target=lambda: httpd.serve_forever(poll_interval=0.05),
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=5.0)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.registry is not None:
            if self._default_runtime is not None:
                self.registry.release(self._default_runtime)
                self._default_runtime = None
            self.registry.close()
        else:
            self.batcher.stop()
            self.sessions.stop()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "LocalizationHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("LocalizationHTTPServer is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- overload / drain machinery --------------------------------------
    def _retry_after_for(self, batcher: MicroBatcher) -> int:
        """Adaptive Retry-After from live queue depth and drain rate."""
        return compute_retry_after_s(
            batcher.queue_depth(),
            drain_rate=batcher.drain_rate(),
            max_batch=batcher.max_batch,
            max_wait_s=batcher.max_wait_s,
            floor_s=self.retry_after_s,
        )

    def _retry_after_s(self) -> int:
        return self._retry_after_for(self.batcher)

    def _shed(self, reason: str, batcher: Optional[MicroBatcher] = None) -> _ApiError:
        retry_after = self._retry_after_for(
            batcher if batcher is not None else self.batcher
        )
        # Queue-pressure sheds keep the wire name pre-dating the
        # admission controller ("queue_full"); the latency brake is new.
        error = "queue_full" if reason.startswith("queue") else "overloaded"
        err = _ApiError(429, error, reason, retry_after_s=retry_after)
        err.headers["Retry-After"] = str(retry_after)
        return err

    def _admit_data_plane(self) -> bool:
        """Register one data-plane request, atomically vs. drain.

        The draining check and the in-flight increment happen under one
        lock, so :meth:`drain` can never observe zero in-flight while a
        request that already passed the check is about to start.
        """
        with self._inflight_cond:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def _exit_data_plane(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    def _draining_response(self, request_id: Optional[str] = None) -> _Route:
        retry_after = self._retry_after_s()
        doc: Dict[str, object] = {
            "error": "draining", "detail": "instance is draining; retry elsewhere",
        }
        if request_id:
            doc["request_id"] = request_id
        body = canonical_json(doc)
        return 503, body, "application/json", {"Retry-After": str(retry_after)}

    def in_flight(self) -> int:
        with self._inflight_cond:
            return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, deadline_s: Optional[float] = None) -> Dict[str, object]:
        """Graceful drain: refuse new data-plane work, finish the old.

        1. Flip the draining flag (atomically vs. request admission) —
           new locate traffic answers 503 + ``Retry-After``, ``/healthz``
           flips unhealthy so load balancers eject this instance;
           control-plane endpoints keep answering.
        2. Wait for in-flight data-plane requests to finish, bounded by
           ``deadline_s`` (default: the constructor's
           ``drain_deadline_s``).
        3. Stop the micro-batcher, which drains every already-accepted
           queued request before its thread exits.

        Returns a report: ``{"drained", "waited_s", "unfinished"}``.
        ``unfinished == 0`` is the graceful-exit contract the CI chaos
        smoke asserts.  Idempotent: a second call waits on the same
        drain rather than re-running it.
        """
        with self._inflight_cond:
            already = self._draining
            self._draining = True
        if not already:
            obs.counter("serve.drain.initiated").inc()
        limit = self.drain_deadline_s if deadline_s is None else float(deadline_s)
        t0 = time.monotonic()  # real time: bounds a real wait, even with ManualClock
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = limit - (time.monotonic() - t0)
                if remaining <= 0:
                    break
                self._inflight_cond.wait(timeout=min(remaining, 0.05))
            unfinished = self._inflight
        if not already:
            # Drains the accepted backlog: every queued future resolves,
            # including queued tracking-session steps.  Fleet mode
            # quiesces every resident site the same way.
            if self.registry is not None:
                self.registry.close()
            else:
                self.batcher.stop()
                self.sessions.stop()
        report: Dict[str, object] = {
            "drained": unfinished == 0,
            "waited_s": round(time.monotonic() - t0, 4),
            "unfinished": unfinished,
        }
        self._drain_report = report
        obs.counter("serve.drain.completed",
                    result="clean" if unfinished == 0 else "timeout").inc()
        obs.gauge("serve.drain.unfinished").set(unfinished)
        return report

    # -- endpoint handlers ----------------------------------------------
    def _deadline_from(self, handler: _Handler, doc: Optional[dict]) -> Optional[float]:
        """Resolve the request's deadline budget in seconds (or None).

        The tightest of the ``X-Deadline-Ms`` header and the body's
        ``deadline_ms`` wins; ``default_deadline_ms`` applies only when
        neither is present.  Invalid values are 400s; a non-positive
        *header* budget is a 504 (the client's clock says the request
        is already dead — distinct from a malformed body deadline).
        """
        budgets: List[float] = []
        body_ms = (doc or {}).get("deadline_ms")
        if body_ms is not None:
            try:
                body_s = float(body_ms) / 1000.0
            except (TypeError, ValueError):
                raise _ApiError(400, "bad_deadline",
                                f"deadline_ms not a number: {body_ms!r}") from None
            if body_s <= 0:
                raise _ApiError(400, "bad_deadline",
                                f"deadline_ms must be > 0, got {body_ms}")
            budgets.append(body_s)
        header_ms = handler.headers.get(DEADLINE_HEADER)
        if header_ms is not None:
            try:
                header_s = float(header_ms) / 1000.0
            except (TypeError, ValueError):
                raise _ApiError(400, "bad_deadline",
                                f"{DEADLINE_HEADER} not a number: {header_ms!r}") from None
            if header_s <= 0:
                raise _ApiError(504, "deadline_exceeded",
                                f"{DEADLINE_HEADER} budget already spent ({header_ms}ms)")
            budgets.append(header_s)
        if not budgets and self.default_deadline_ms is not None:
            budgets.append(float(self.default_deadline_ms) / 1000.0)
        return min(budgets) if budgets else None

    # -- site leases ------------------------------------------------------
    def _site_entry(self, method: str, site_id: str, tail: str):
        """Route one ``/v1/sites/{site}/...`` path to a handler closure."""
        if not _SITE_ID_RE.match(site_id):
            return None
        if method == "POST" and tail == "locate":
            return ("locate", lambda h, _s=site_id: self._handle_locate(h, site=_s))
        if method == "POST" and tail == "locate/batch":
            return (
                "locate_batch",
                lambda h, _s=site_id: self._handle_locate_batch(h, site=_s),
            )
        if method == "POST" and tail == "admin/reload":
            return ("reload", lambda h, _s=site_id: self._handle_reload(h, site=_s))
        if tail.startswith("track/") and len(tail) > len("track/"):
            session_id = tail[len("track/"):]
            track_routes = {
                "POST": ("track", self._handle_track_step),
                "GET": ("track_status", self._handle_track_get),
                "DELETE": ("track_close", self._handle_track_close),
            }
            if method in track_routes:
                name, fn = track_routes[method]
                return (
                    name,
                    lambda h, _f=fn, _sid=session_id, _s=site_id: _f(h, _sid, site=_s),
                )
        return None

    @contextmanager
    def _leased(self, site: Optional[str]) -> Iterator[SimpleNamespace]:
        """Pin the site's runtime for the duration of one request.

        Single-site servers yield the fixed view (site_id None — no
        labels, no registry).  Fleet servers acquire through the
        registry, so the runtime cannot be evicted while the request —
        including its ``future.result()`` wait — is in flight, and
        release when the response is built.
        """
        if self.registry is None:
            yield self._single_view
            return
        try:
            runtime = self.registry.acquire(site)
        except UnknownSiteError as exc:
            raise _ApiError(
                404, "unknown_site", str(exc), sites=self.registry.site_ids()
            ) from None
        except RuntimeError as exc:
            # Registry closed by a drain racing this request.
            raise _ApiError(503, "draining", str(exc)) from None
        try:
            yield runtime
        finally:
            self.registry.release(runtime)

    def _handle_locate(self, handler: _Handler, site: Optional[str] = None) -> _Route:
        with self._leased(site) as view:
            shed = self.admission.admit(Priority.NORMAL, view.batcher.queue_depth())
            if shed is not None:
                raise self._shed(shed, batcher=view.batcher)
            doc = handler._read_json()
            try:
                observation = observation_from_json(doc, expect_site=view.site_id)
            except WireError as exc:
                raise _ApiError(400, "bad_observation", str(exc)) from None
            budget_s = self._deadline_from(handler, doc if isinstance(doc, dict) else None)
            deadline = None if budget_s is None else self._clock.monotonic() + budget_s
            if self.chaos is not None:
                chaos_s = self.chaos.dispatch_latency_s()
                if chaos_s > 0:
                    time.sleep(chaos_s)
            try:
                future = view.batcher.submit(observation, deadline=deadline)
            except DeadlineExceededError as exc:
                # Refused at enqueue: already dead on arrival, never queued.
                raise _ApiError(504, "deadline_exceeded", str(exc)) from None
            except QueueFullError as exc:
                retry_after = self._retry_after_for(view.batcher)
                err = _ApiError(429, "queue_full", str(exc), retry_after_s=retry_after)
                err.headers["Retry-After"] = str(retry_after)
                raise err from None
            try:
                # The dispatcher enforces the queue-side deadline; the extra
                # slack here only bounds a dispatch that is itself slow.
                estimate = future.result(
                    timeout=None if budget_s is None else budget_s + 30.0
                )
            except DeadlineExceededError as exc:
                raise _ApiError(504, "deadline_exceeded", str(exc)) from None
        return 200, canonical_json(estimate_to_json(estimate)), "application/json", {}

    def _handle_locate_batch(
        self, handler: _Handler, site: Optional[str] = None
    ) -> _Route:
        with self._leased(site) as view:
            # Bulk priority: first to shed under queue pressure or latency.
            shed = self.admission.admit(Priority.BULK, view.batcher.queue_depth())
            if shed is not None:
                raise self._shed(shed, batcher=view.batcher)
            doc = handler._read_json()
            if not isinstance(doc, dict) or not isinstance(doc.get("observations"), list):
                raise _ApiError(400, "bad_request", "body must be {'observations': [...]}")
            docs = doc["observations"]
            if not docs:
                raise _ApiError(400, "bad_request", "'observations' must not be empty")
            if len(docs) > MAX_BATCH_REQUEST:
                raise _ApiError(
                    413, "batch_too_large",
                    f"{len(docs)} observations exceed the {MAX_BATCH_REQUEST} cap; split the request",
                )
            try:
                observations = [
                    observation_from_json(d, expect_site=view.site_id) for d in docs
                ]
            except WireError as exc:
                raise _ApiError(400, "bad_observation", str(exc)) from None
            # A non-positive header budget 504s before any kernel time is
            # spent on a batch the client has already given up on.
            self._deadline_from(handler, None)
            if self.chaos is not None:
                chaos_s = self.chaos.dispatch_latency_s()
                if chaos_s > 0:
                    time.sleep(chaos_s)
            # Already a batch: no coalescing window to gain, straight through
            # the chunked/sharded engine.
            estimates = view.service.locate_many(observations)
        body = canonical_json(
            {"estimates": [estimate_to_json(e) for e in estimates]}
        )
        return 200, body, "application/json", {}

    # -- tracking sessions ----------------------------------------------
    @staticmethod
    def _check_session_id(session_id: str) -> None:
        if not _SESSION_ID_RE.match(session_id):
            raise _ApiError(
                400, "bad_session_id",
                "session ids are 1-128 chars of [A-Za-z0-9._:-]",
            )

    def _track_retry_after_s(self, sessions: Optional[TrackingSessions] = None) -> int:
        sessions = sessions if sessions is not None else self.sessions
        return compute_retry_after_s(
            sessions.batcher.queue_depth(),
            drain_rate=sessions.batcher.drain_rate(),
            max_batch=sessions.batcher.max_batch,
            max_wait_s=sessions.batcher.max_wait_s,
            floor_s=self.retry_after_s,
        )

    def _handle_track_step(
        self, handler: _Handler, session_id: str, site: Optional[str] = None
    ) -> _Route:
        self._check_session_id(session_id)
        with self._leased(site) as view:
            return self._track_step(handler, session_id, view)

    def _track_step(
        self, handler: _Handler, session_id: str, view
    ) -> _Route:
        sessions = view.sessions
        shed = self.admission.admit(Priority.NORMAL, sessions.batcher.queue_depth())
        if shed is not None:
            raise self._shed(shed)
        doc = handler._read_json()
        try:
            observation = observation_from_json(doc, expect_site=view.site_id)
        except WireError as exc:
            raise _ApiError(400, "bad_observation", str(exc)) from None
        dt_s = None
        if isinstance(doc, dict) and doc.get("dt_s") is not None:
            try:
                dt_s = float(doc["dt_s"])
            except (TypeError, ValueError):
                raise _ApiError(400, "bad_dt",
                                f"dt_s not a number: {doc['dt_s']!r}") from None
            if dt_s <= 0:
                raise _ApiError(400, "bad_dt", f"dt_s must be > 0, got {doc['dt_s']}")
        ts = None
        if isinstance(doc, dict) and doc.get("ts") is not None:
            # Client scan timestamp (seconds, any consistent epoch):
            # the session derives Δt from consecutive ts values, with
            # an explicit dt_s always winning (see sessions.step).
            try:
                ts = float(doc["ts"])
            except (TypeError, ValueError):
                raise _ApiError(400, "bad_ts",
                                f"ts not a number: {doc['ts']!r}") from None
            if not math.isfinite(ts):
                raise _ApiError(400, "bad_ts", f"ts must be finite, got {doc['ts']}")
        budget_s = self._deadline_from(handler, doc if isinstance(doc, dict) else None)
        # Deadlines live on the *track* batcher's clock (the default
        # construction shares the server clock, so they coincide).
        deadline = (
            None if budget_s is None else sessions.clock.monotonic() + budget_s
        )
        if self.chaos is not None:
            chaos_s = self.chaos.dispatch_latency_s()
            if chaos_s > 0:
                time.sleep(chaos_s)
        try:
            future, created = sessions.step(
                session_id, observation, dt_s, deadline=deadline, ts=ts
            )
        except DeadlineExceededError as exc:
            raise _ApiError(504, "deadline_exceeded", str(exc)) from None
        except QueueFullError as exc:
            retry_after = self._track_retry_after_s(sessions)
            err = _ApiError(429, "queue_full", str(exc), retry_after_s=retry_after)
            err.headers["Retry-After"] = str(retry_after)
            raise err from None
        try:
            estimate, seq = future.result(
                timeout=None if budget_s is None else budget_s + 30.0
            )
        except DeadlineExceededError as exc:
            raise _ApiError(504, "deadline_exceeded", str(exc)) from None
        except SessionClosedError as exc:
            # Closed (delete/TTL/LRU) between enqueue and apply: the
            # scan was NOT applied; 410 tells the client its session is
            # gone for good (vs the 404 of an id that never existed).
            raise _ApiError(410, "session_closed", str(exc)) from None
        except BadTimestampError as exc:
            # ts rewound past the rejection window: the scan was NOT
            # applied (any Δt would corrupt the filter state).
            raise _ApiError(400, "bad_timestamp", str(exc)) from None
        body = canonical_json(
            track_estimate_to_json(estimate, session_id, seq, created=created)
        )
        return 200, body, "application/json", {}

    def _handle_track_get(
        self, handler: _Handler, session_id: str, site: Optional[str] = None
    ) -> _Route:
        self._check_session_id(session_id)
        try:
            with self._leased(site) as view:
                estimate, seq = view.sessions.current(session_id)
        except UnknownSessionError as exc:
            raise _ApiError(404, "unknown_session", str(exc)) from None
        if estimate is None:
            doc: Dict[str, object] = {
                "valid": False,
                "position": None,
                "location_name": None,
                "score": None,
                "reason": "no scans applied yet",
                "session": {"id": session_id, "seq": 0, "created": False},
            }
        else:
            doc = track_estimate_to_json(estimate, session_id, seq)
        return 200, canonical_json(doc), "application/json", {}

    def _handle_track_close(
        self, handler: _Handler, session_id: str, site: Optional[str] = None
    ) -> _Route:
        self._check_session_id(session_id)
        try:
            with self._leased(site) as view:
                report = view.sessions.close(session_id)
        except UnknownSessionError as exc:
            # Also the answer for a *second* DELETE: close is exactly-once.
            raise _ApiError(404, "unknown_session", str(exc)) from None
        body = canonical_json(
            {"closed": True, "session": {"id": session_id, "seq": report["steps"]}}
        )
        return 200, body, "application/json", {}

    def _handle_reload(
        self, handler: _Handler, site: Optional[str] = None
    ) -> _Route:
        length = int(handler.headers.get("Content-Length") or 0)
        database = None
        body_site = None
        if length > 0:
            doc = handler._read_json()
            if not isinstance(doc, dict):
                raise _ApiError(400, "bad_request", "reload body must be a JSON object")
            database = doc.get("database")
            body_site = doc.get("site")
        if body_site is not None:
            if not isinstance(body_site, str):
                raise _ApiError(400, "bad_request", "'site' must be a string")
            if site is not None and body_site != site:
                raise _ApiError(
                    400, "bad_request",
                    f"body site {body_site!r} contradicts path site {site!r}",
                )
            site = body_site
        if self.registry is not None:
            # Fleet reload: the registry swaps the site's model (loading
            # the site first if cold), bumps its generation and rebinds
            # any live trackers on it.
            try:
                info = self.registry.reload(site, database)
            except UnknownSiteError as exc:
                raise _ApiError(
                    404, "unknown_site", str(exc), sites=self.registry.site_ids()
                ) from None
            except Exception as exc:  # noqa: BLE001 - old model keeps serving
                raise _ApiError(
                    500, "reload_failed", f"{type(exc).__name__}: {exc}",
                    serving="previous model",
                ) from None
            info = dict(info)
            rebound = info.pop("sessions", {"sessions": 0, "kept": 0, "reset": 0})
            self._notify_admin(
                {"cmd": "reload", "database": database, "site": info.get("site")}
            )
            return (
                200,
                canonical_json({"reloaded": True, "model": info, "sessions": rebound}),
                "application/json",
                {},
            )
        if site is not None:
            raise _ApiError(
                400, "bad_request", "this server is single-site; no site to reload"
            )
        try:
            info = self.service.reload(database)
        except Exception as exc:  # noqa: BLE001 - old model keeps serving
            raise _ApiError(
                500, "reload_failed", f"{type(exc).__name__}: {exc}", serving="previous model",
            ) from None
        # Live tracking sessions follow the swap coherently: each filter
        # re-binds to the new generation, keeping its state where it can.
        rebound = self.sessions.rebind()
        self._notify_admin({"cmd": "reload", "database": database})
        return (
            200,
            canonical_json({"reloaded": True, "model": info, "sessions": rebound}),
            "application/json",
            {},
        )

    def _handle_sites(self, handler: _Handler) -> _Route:
        """``GET /v1/sites``: the registry's fleet card (control plane)."""
        return 200, canonical_json(self.registry.status()), "application/json", {}

    def _notify_admin(self, event: Dict[str, object]) -> None:
        """Tell the admin hook (sibling-worker broadcast) what just
        happened locally; hook failures never fail the admin caller."""
        if self.admin_hook is None:
            return
        try:
            self.admin_hook(event)
        except Exception as exc:  # noqa: BLE001 - broadcast is best-effort
            obs.counter("serve.admin_hook_errors", kind=type(exc).__name__).inc()

    def _handle_drain(self, handler: _Handler) -> _Route:
        deadline_s = None
        length = int(handler.headers.get("Content-Length") or 0)
        if length > 0:
            doc = handler._read_json()
            if not isinstance(doc, dict):
                raise _ApiError(400, "bad_request", "drain body must be a JSON object")
            if doc.get("deadline_s") is not None:
                try:
                    deadline_s = float(doc["deadline_s"])
                except (TypeError, ValueError):
                    raise _ApiError(400, "bad_request",
                                    f"deadline_s not a number: {doc['deadline_s']!r}") from None
        with self._inflight_cond:
            already = self._draining
        if not already:
            # drain() blocks until in-flight work finishes; answer the
            # admin caller now and let the wait happen off-thread.  The
            # report lands on /healthz (lifecycle check) when done.
            threading.Thread(
                target=self.drain, args=(deadline_s,),
                name="repro-serve-drain", daemon=True,
            ).start()
            self._notify_admin({"cmd": "drain", "deadline_s": deadline_s})
        body = canonical_json({
            "draining": True,
            "already_draining": already,
            "in_flight": self.in_flight(),
        })
        return 200, body, "application/json", {}

    def _handle_healthz(self, handler: _Handler) -> _Route:
        ok, report = run_health_checks(self._checks)
        body = (json.dumps(report, indent=2, sort_keys=True) + "\n").encode("utf-8")
        return (200 if ok else 503), body, "application/json", {}

    def _metrics_snapshot(self) -> dict:
        if self.metrics_source is not None:
            return self.metrics_source()
        return obs.snapshot()

    def _handle_metrics(self, handler: _Handler) -> _Route:
        accept = handler.headers.get("Accept") or ""
        if "application/openmetrics-text" in accept:
            # OpenMetrics negotiation: real cumulative-le histograms
            # with trace-id exemplars, rendered from full bucket state
            # (a snapshot has already collapsed the buckets away).
            if self.metrics_state_source is not None:
                state = self.metrics_state_source()
            else:
                state = obs.get_registry().dump_state()
            body = render_openmetrics(state).encode("utf-8")
            return 200, body, OPENMETRICS_CONTENT_TYPE, {}
        body = render_prometheus(self._metrics_snapshot()).encode("utf-8")
        return 200, body, PROMETHEUS_CONTENT_TYPE, {}

    def _handle_metrics_json(self, handler: _Handler) -> _Route:
        body = render_json(self._metrics_snapshot()).encode("utf-8")
        return 200, body, "application/json", {}

    def _handle_debug_traces(self, handler: _Handler) -> _Route:
        """The flight recorder's window: retained traces as JSON.

        ``?trace_id=<32hex>`` filters to one trace.  With a
        ``trace_source`` installed (the worker fleet), the answer is
        the fleet-merged view, so *any* worker can produce a trace
        that was served (and recorded) by a sibling.
        """
        query = handler.path.partition("?")[2]
        want: Optional[str] = None
        for part in query.split("&"):
            key, _, value = part.partition("=")
            if key == "trace_id" and value:
                want = value.strip().lower()
        if self.trace_source is not None:
            doc = self.trace_source()
        else:
            recorder = obs.get_recorder()
            doc = (
                recorder.snapshot()
                if recorder is not None
                else {"schema": TRACE_SCHEMA, "stats": {}, "traces": []}
            )
        if want is not None:
            doc = dict(doc)
            doc["traces"] = [
                t for t in doc.get("traces", []) if t.get("trace_id") == want
            ]
        body = (json.dumps(doc, sort_keys=True, default=str) + "\n").encode("utf-8")
        return 200, body, "application/json", {}

    def _handle_index(self, handler: _Handler) -> _Route:
        doc = {
            "service": "repro-localization",
            "model": self.service.describe(),
            "batching": {
                "max_batch": self.batcher.max_batch,
                "max_wait_ms": 1000.0 * self.batcher.max_wait_s,
                "max_queue": self.batcher.max_queue,
            },
            "tracking": {
                "filter": self.sessions.kind,
                "session_capacity": self.sessions.store.capacity,
                "session_ttl_s": self.sessions.store.ttl_s,
            },
            "endpoints": [
                "POST /v1/locate",
                "POST /v1/locate/batch",
                "POST /v1/track/{session}",
                "GET /v1/track/{session}",
                "DELETE /v1/track/{session}",
                "POST /admin/reload",
                "POST /admin/drain",
                "GET /healthz",
                "GET /metrics",
                "GET /metrics.json",
                "GET /debug/traces",
            ],
        }
        if self.registry is not None:
            status = self.registry.status()
            doc["sites"] = {
                "default": status["default"],
                "capacity": status["capacity"],
                "known": status["sites"],
                "resident": [entry["site"] for entry in status["resident"]],
            }
            doc["endpoints"] += [
                "GET /v1/sites",
                "POST /v1/sites/{site}/locate",
                "POST /v1/sites/{site}/locate/batch",
                "POST /v1/sites/{site}/track/{session}",
                "GET /v1/sites/{site}/track/{session}",
                "DELETE /v1/sites/{site}/track/{session}",
                "POST /v1/sites/{site}/admin/reload",
            ]
        return 200, canonical_json(doc), "application/json", {}
