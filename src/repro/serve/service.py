"""Model lifecycle for the localization service.

:class:`LocalizationService` owns the fitted localizer a server
dispatches against: it loads a training database, builds and fits the
configured algorithm (the degraded-mode fallback chain by default),
and exposes *atomic hot-reload* — ``reload()`` builds and fits a
complete replacement model off to the side and only then swaps one
reference, so in-flight requests keep scoring against a consistent
model and a failed reload leaves the old model serving.  Dispatch
never takes the reload lock; it reads one attribute.

Resilience: when the model is a fallback chain, each tier runs behind
a per-tier circuit breaker (:class:`~repro.serve.resilience.TierBreakerBoard`)
— a tier that keeps *raising* is skipped for a cooldown instead of
being paid for on every request, and its state rides ``/healthz``.
The board outlives hot-reloads on purpose: a reload that did not fix
a wedged tier should not reset its quarantine.  A
:class:`~repro.serve.resilience.ChaosPolicy` with tier faults wraps
the fitted tiers in :class:`~repro.serve.resilience.ChaosTier`
proxies, so injected failures exercise exactly the breaker path real
failures would.

The service is transport-agnostic: :mod:`repro.serve.http` puts it
behind HTTP, tests and benches call :meth:`locate_many` directly.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Union

from repro import obs
from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    make_localizer,
)
from repro.algorithms.fallback import FallbackLocalizer
from repro.core.trainingdb import TrainingDatabase
from repro.serve.resilience import ChaosPolicy, ChaosTier, TierBreakerBoard

__all__ = ["LocalizationService"]


class _Model:
    """One immutable generation: a fitted localizer and its provenance."""

    __slots__ = ("localizer", "db", "database_path", "generation")

    def __init__(self, localizer: Localizer, db: TrainingDatabase,
                 database_path: Optional[str], generation: int):
        self.localizer = localizer
        self.db = db
        self.database_path = database_path
        self.generation = generation


class LocalizationService:
    """Load/warm/serve/reload a fitted localizer.

    Parameters
    ----------
    database:
        Path to a ``.tdb`` training database, or an already-loaded
        :class:`TrainingDatabase` (tests, benches).
    algorithm:
        Registry name (default ``"fallback"`` — the degraded-mode
        chain, the right default for a service that must answer).
    ap_positions, bounds:
        Forwarded to localizers that want ranging geometry / site
        bounds (``fallback``, ``geometric``, ``multilateration``).
    warm:
        Fit (and thereby precompute every kernel's fitted arrays) at
        construction time so the first request pays nothing.
    breakers:
        Per-tier circuit breakers around the fallback chain (default
        on; pass ``None``/``False`` to disable, or a ready
        :class:`~repro.serve.resilience.TierBreakerBoard` to share one).
        With breakers closed the chain's answers are byte-identical to
        the unguarded chain — the wire-parity suite enforces that.
    chaos:
        Optional :class:`~repro.serve.resilience.ChaosPolicy`; when its
        ``tier_error_rate`` is set, fitted fallback tiers are wrapped
        in fault-injecting proxies (tests, benches, ``--chaos``).
    generation_base:
        Starting point for the generation counter (first build is
        ``generation_base + 1``).  The multi-site
        :class:`~repro.serve.registry.ModelRegistry` seeds this with the
        site's last known generation so evict + reload keeps the
        per-site sequence strictly monotonic.
    """

    def __init__(
        self,
        database: Union[str, TrainingDatabase],
        algorithm: str = "fallback",
        ap_positions: Optional[Dict[str, object]] = None,
        bounds=None,
        warm: bool = True,
        breakers: Union[TierBreakerBoard, bool, None] = True,
        chaos: Optional[ChaosPolicy] = None,
        generation_base: int = 0,
    ):
        self.algorithm = algorithm
        self._ap_positions = ap_positions
        self._bounds = bounds
        self._reload_lock = threading.Lock()
        self._model: Optional[_Model] = None
        self._generation = int(generation_base)
        self._initial: Union[str, TrainingDatabase, None] = database
        if isinstance(breakers, TierBreakerBoard):
            self.breaker_board: Optional[TierBreakerBoard] = breakers
        else:
            self.breaker_board = TierBreakerBoard() if breakers else None
        self.chaos = chaos
        if warm:
            self.reload(database)

    # -- model lifecycle -------------------------------------------------
    def _build(self, database: Union[str, TrainingDatabase]) -> _Model:
        if isinstance(database, TrainingDatabase):
            db, path = database, None
        else:
            path = str(database)
            # Magic-sniffing load: a frozen pack (.tdbx) opens as
            # read-only mmap views — no zlib.decompress, no per-record
            # copies on the serving path — so a hot reload of a pack is
            # "open, verify checksums, swap one reference".
            from repro.core.frozenpack import load_database

            db = load_database(path)
        kwargs: Dict[str, object] = {}
        if self.algorithm in ("geometric", "multilateration"):
            if self._ap_positions is None:
                raise ValueError(f"algorithm {self.algorithm!r} needs ap_positions")
            kwargs["ap_positions"] = self._ap_positions
        elif self.algorithm == "fallback":
            if self._ap_positions is not None:
                kwargs["ap_positions"] = self._ap_positions
            if self._bounds is not None:
                kwargs["bounds"] = self._bounds
        with obs.span("serve.model_fit", algorithm=self.algorithm):
            localizer = make_localizer(self.algorithm, **kwargs).fit(db)
        if isinstance(localizer, FallbackLocalizer):
            if self.chaos is not None and self.chaos.tier_error_rate > 0:
                localizer._fitted = [
                    ChaosTier(tier, self.chaos) for tier in localizer._fitted
                ]
            localizer.tier_guard = self.breaker_board
        frozen_path = getattr(db, "frozen_path", None)
        if frozen_path is not None and self.chaos is None:
            # Pack-backed model: big sharded batches ship this spec to
            # worker processes instead of pickling the fitted arrays
            # (chaos wrappers are process-local, so a chaos'd model
            # keeps the classic pickle path).
            localizer.shard_pack_spec = {
                "pack_path": frozen_path,
                "stat": list(db.frozen_pack.stat),
                "algorithm": self.algorithm,
                "kwargs": kwargs,
            }
        self._generation += 1
        return _Model(localizer, db, path, self._generation)

    def reload(self, database: Union[str, TrainingDatabase, None] = None) -> Dict[str, object]:
        """Build + fit a replacement model, then swap it in atomically.

        ``database=None`` re-reads the current model's database path
        (picking up a regenerated ``.tdb`` in place).  Any failure —
        unreadable file, un-fittable model — raises *without touching*
        the serving model; the swap is the last statement.
        """
        with self._reload_lock:
            if database is None:
                if self._model is not None and self._model.database_path is not None:
                    database = self._model.database_path
                elif self._model is None and self._initial is not None:
                    database = self._initial  # warm=False: first explicit load
                else:
                    raise ValueError("no database path to reload from; pass one")
            try:
                model = self._build(database)
            except Exception:
                obs.counter("serve.reloads", result="failed").inc()
                raise
            self._model = model  # the atomic swap: one reference store
            obs.counter("serve.reloads", result="ok").inc()
            obs.gauge("serve.model_generation").set(model.generation)
            obs.gauge("serve.model_locations").set(len(model.db))
            obs.gauge("serve.model_aps").set(len(model.db.bssids))
            return self.describe()

    def model(self) -> _Model:
        model = self._model
        if model is None:
            raise RuntimeError("LocalizationService has no model; call reload()")
        return model

    @property
    def loaded(self) -> bool:
        return self._model is not None

    def describe(self) -> Dict[str, object]:
        """JSON-safe model card (served on ``GET /`` and after reload)."""
        model = self.model()
        info: Dict[str, object] = {
            "algorithm": self.algorithm,
            "database": model.database_path,
            "generation": model.generation,
            "locations": len(model.db),
            "aps": len(model.db.bssids),
            "frozen": getattr(model.db, "frozen_pack", None) is not None,
        }
        if isinstance(model.localizer, FallbackLocalizer):
            info["tiers"] = [
                getattr(t, "name", "") or type(t).__name__
                for t in model.localizer._fitted or []
            ]
            if model.localizer.fit_errors:
                info["tier_fit_errors"] = dict(model.localizer.fit_errors)
        return info

    # -- dispatch --------------------------------------------------------
    def locate_many(self, observations: Sequence[Observation]) -> List[LocationEstimate]:
        """Score a batch against the current model generation.

        The model reference is read once, so a concurrent reload cannot
        split one batch across two generations.
        """
        return self.model().localizer.locate_many(observations)

    def health_check(self):
        """(ok, detail) for /healthz: a loaded, fitted model."""
        if not self.loaded:
            return False, "no model loaded"
        return True, self.describe()

    def breaker_health(self):
        """(ok, detail) for /healthz: per-tier circuit-breaker states.

        Degraded only when every tier's breaker is open (the chain can
        no longer answer from anywhere); one open breaker is a detail,
        not an ejection — lower tiers are still serving.
        """
        if self.breaker_board is None:
            return True, "breakers disabled"
        return self.breaker_board.health()
