"""Multi-process serving: prefork workers sharing one SO_REUSEPORT port.

CPython's GIL caps a single ``repro serve`` process at roughly one
core of kernel math no matter how many handler threads run.  This
module is the scale-out answer (``repro serve --workers N``):

* :class:`WorkerSpec` — a picklable recipe for one worker: everything
  :class:`~repro.serve.service.LocalizationService` and
  :class:`~repro.serve.http.LocalizationHTTPServer` need to build the
  same server the single-process path builds.  A frozen model pack
  (``.tdbx``) makes the N copies cheap: every worker mmaps the same
  file, so the model occupies one set of physical pages fleet-wide.
* :func:`worker_main` — the child entry point: fresh metrics registry,
  build, bind with ``SO_REUSEPORT`` (the kernel load-balances accepted
  connections across workers), announce readiness via a rundir file,
  then tick: flush metrics deltas, poll the control channel, drain
  gracefully on SIGTERM.
* :class:`FleetMetrics` — cross-process metrics aggregation over the
  rundir: each worker atomically dumps its registry state to
  ``metrics-<i>.json``; a ``/metrics`` scrape on *any* worker flushes
  its own state and merges every worker's file through
  :meth:`~repro.obs.metrics.MetricsRegistry.merge`, so the fleet total
  is exactly the sum of the per-worker dumps (counters add, histogram
  buckets add, gauges are last-write).
* :class:`FleetTraces` — the same rundir pattern for the flight
  recorder: each worker dumps its retained traces to
  ``traces-<i>.json`` on every tick, and ``/debug/traces`` on *any*
  worker merges every file through
  :meth:`~repro.obs.FlightRecorder.merge_docs` — so a sharded request
  whose spans landed on worker 2 is retrievable from worker 0.
  ``SIGUSR2`` dumps a worker's recorder to
  ``traces-<i>-<pid>.jsonl`` for offline inspection without touching
  the serving path.
* :class:`ControlChannel` — admin fan-out: the worker that happened to
  receive ``/admin/drain`` or ``/admin/reload`` applies it locally and
  bumps ``control.json``; every sibling applies the command on its
  next tick.  One admin call drives the whole fleet.
* :class:`Supervisor` — the parent: reserves the port (a bound,
  *never-listening* placeholder socket with ``SO_REUSEPORT`` keeps a
  ``--port 0`` pick stable across worker restarts without stealing
  connections — only listening sockets receive them), forks the
  workers, restarts any that die, and on shutdown fans out SIGTERM and
  aggregates the per-worker drain reports into the same
  ``drain complete: unfinished=N`` line the single-process CLI prints.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs

__all__ = [
    "WorkerSpec",
    "FleetMetrics",
    "FleetTraces",
    "ControlChannel",
    "Supervisor",
    "worker_main",
]


@dataclass
class WorkerSpec:
    """Everything one worker needs to build its server (picklable).

    ``chaos_kwargs`` carries the :class:`~repro.serve.resilience.
    ChaosPolicy` constructor arguments rather than a policy instance so
    each worker builds its own RNG stream (the seed is offset by the
    worker index — N workers with identical fault schedules would beat
    in lockstep).

    With ``sites`` set (a fleet manifest or pack directory), each
    worker builds a :class:`~repro.serve.registry.ModelRegistry`
    instead of a single service and ``database`` is ignored.  Frozen
    ``.tdbx`` packs make the fleet cheap: every worker mmaps the same
    files, so each resident site occupies one set of physical pages
    fleet-wide no matter how many workers hold it.
    """

    database: str
    host: str = "127.0.0.1"
    port: int = 0
    algorithm: str = "fallback"
    ap_positions: Optional[dict] = None
    bounds: Optional[tuple] = None
    breakers: bool = True
    max_batch: int = 64
    max_wait_ms: float = 5.0
    max_queue: int = 256
    default_deadline_ms: Optional[float] = None
    p99_limit_ms: Optional[float] = None
    drain_deadline_s: float = 10.0
    track_filter: str = "kalman"
    session_capacity: int = 10000
    session_ttl_s: float = 300.0
    chaos_kwargs: Optional[dict] = None
    #: Fleet manifest path (or pack directory) — enables registry mode.
    sites: Optional[str] = None
    default_site: Optional[str] = None
    site_capacity: int = 8
    #: How often a worker flushes its metrics delta and polls the
    #: control channel.  The staleness bound on fleet ``/metrics``
    #: totals for workers other than the one answering the scrape.
    flush_interval_s: float = 1.0


def _write_atomic(path: Path, doc: dict) -> None:
    """Write a rundir JSON file so readers never see a torn write."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc), encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return doc if isinstance(doc, dict) else {}


class FleetMetrics:
    """Per-worker metrics dumps + the fleet-wide merge.

    Every worker owns ``metrics-<index>.json`` in the rundir and
    rewrites it atomically with its registry's full
    :meth:`~repro.obs.metrics.MetricsRegistry.dump_state` on each tick.
    :meth:`merged_snapshot` (plugged into the HTTP server's
    ``metrics_source``) flushes the *local* state first — the answering
    worker is always current — then folds every worker's file into a
    fresh registry, so ``/metrics`` totals are exactly the sum of the
    per-worker dumps.  Siblings' numbers lag by at most their flush
    interval.
    """

    def __init__(self, rundir: Path, index: int):
        self.rundir = Path(rundir)
        self.index = int(index)
        self.path = self.rundir / f"metrics-{self.index}.json"

    def flush(self) -> None:
        _write_atomic(self.path, obs.get_registry().dump_state())

    def _merged_registry(self):
        from repro.obs.metrics import MetricsRegistry

        self.flush()
        merged = MetricsRegistry()
        for path in sorted(self.rundir.glob("metrics-*.json")):
            state = _read_json(path)
            if state:
                merged.merge(state)
        return merged

    def merged_snapshot(self) -> dict:
        return self._merged_registry().snapshot()

    def merged_state(self) -> dict:
        """Fleet-wide ``dump_state`` form (buckets + exemplars intact).

        The OpenMetrics exposition needs raw log-bucket state — the
        snapshot form collapses histogram buckets to quantiles — so
        the HTTP server's ``metrics_state_source`` plugs in here.
        """
        return self._merged_registry().dump_state()


class FleetTraces:
    """Per-worker flight-recorder dumps + the fleet-wide trace merge.

    Mirrors :class:`FleetMetrics`: each worker owns
    ``traces-<index>.json`` (an atomic rewrite of
    :meth:`~repro.obs.FlightRecorder.snapshot` per tick), and
    :meth:`merged` — the HTTP server's ``trace_source`` — flushes the
    local recorder first, then dedupes every worker's file through
    :meth:`~repro.obs.FlightRecorder.merge_docs`.  A trace whose spans
    were recorded by a sibling (the kernel load-balanced the request
    there) is thus visible from any worker's ``/debug/traces``,
    lagging at most the siblings' flush interval.
    """

    def __init__(self, rundir: Path, index: int):
        self.rundir = Path(rundir)
        self.index = int(index)
        self.path = self.rundir / f"traces-{self.index}.json"

    def flush(self) -> None:
        recorder = obs.get_recorder()
        if recorder is not None:
            _write_atomic(self.path, recorder.snapshot())

    def merged(self) -> dict:
        from repro.obs.trace import FlightRecorder

        self.flush()
        docs = [
            _read_json(path) for path in sorted(self.rundir.glob("traces-*.json"))
        ]
        return FlightRecorder.merge_docs(doc for doc in docs if doc)


class ControlChannel:
    """Seq-numbered admin fan-out through ``control.json``.

    :meth:`originate` (the worker that handled the admin request)
    bumps the sequence number and records the command; every sibling's
    :meth:`poll` returns each command exactly once, and the originator
    marks its own command applied (it already acted before
    broadcasting).  Last-writer-wins on a write race between two
    *concurrent* admin calls — admin traffic is rare and idempotent
    (drain is sticky, reload converges), so a lost duplicate is fine.
    """

    def __init__(self, rundir: Path, index: int):
        self.path = Path(rundir) / "control.json"
        self.index = int(index)
        self._lock = threading.Lock()
        self._applied = int(_read_json(self.path).get("seq", 0))

    def originate(self, event: Dict[str, object]) -> int:
        with self._lock:
            seq = int(_read_json(self.path).get("seq", 0)) + 1
            doc = {"seq": seq, "origin": self.index}
            doc.update({k: v for k, v in event.items() if v is not None or k == "cmd"})
            _write_atomic(self.path, doc)
            self._applied = max(self._applied, seq)
        obs.counter("serve.fleet.control", cmd=str(event.get("cmd"))).inc()
        return seq

    def poll(self) -> Optional[Dict[str, object]]:
        doc = _read_json(self.path)
        seq = int(doc.get("seq", 0))
        with self._lock:
            if seq <= self._applied:
                return None
            self._applied = seq
        return doc


def _build_server(spec: WorkerSpec, index: int, rundir: Path):
    """Build one worker's service + HTTP server from the spec."""
    from repro.serve.http import LocalizationHTTPServer
    from repro.serve.service import LocalizationService

    chaos = None
    if spec.chaos_kwargs:
        from repro.serve.resilience import ChaosPolicy

        kwargs = dict(spec.chaos_kwargs)
        if kwargs.get("seed") is not None:
            kwargs["seed"] = int(kwargs["seed"]) + index
        chaos = ChaosPolicy(**kwargs)
    service = None
    registry = None
    if spec.sites is not None:
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry(
            spec.sites,
            capacity=spec.site_capacity,
            default_site=spec.default_site,
            service_kwargs={"breakers": spec.breakers, "chaos": chaos},
        )
    else:
        service = LocalizationService(
            spec.database,
            algorithm=spec.algorithm,
            ap_positions=spec.ap_positions,
            bounds=spec.bounds,
            breakers=spec.breakers,
            chaos=chaos,
        )
    fleet = FleetMetrics(rundir, index)
    traces = FleetTraces(rundir, index)
    control = ControlChannel(rundir, index)
    server = LocalizationHTTPServer(
        service,
        registry=registry,
        host=spec.host,
        port=spec.port,
        max_batch=spec.max_batch,
        max_wait_ms=spec.max_wait_ms,
        max_queue=spec.max_queue,
        default_deadline_ms=spec.default_deadline_ms,
        p99_limit_ms=spec.p99_limit_ms,
        chaos=chaos,
        drain_deadline_s=spec.drain_deadline_s,
        track_filter=spec.track_filter,
        session_capacity=spec.session_capacity,
        session_ttl_s=spec.session_ttl_s,
        reuse_port=True,
        metrics_source=fleet.merged_snapshot,
        metrics_state_source=fleet.merged_state,
        trace_source=traces.merged,
        admin_hook=control.originate,
    )
    # In registry mode the server aliases ``service`` to the pinned
    # default site's service, so the ready-file model description and
    # single-site control reloads work unchanged.
    return server.service, server, fleet, traces, control


def worker_main(spec: WorkerSpec, index: int, rundir: str) -> int:
    """One worker process: build, serve, tick, drain on SIGTERM."""
    from repro.obs.metrics import MetricsRegistry, set_registry

    # The fork inherited the parent's registry contents; a fresh one
    # makes metrics-<index>.json a pure record of *this* worker's work,
    # which is what makes the fleet merge exactly a sum.  Same story
    # for the flight recorder: each worker records its own traces.
    set_registry(MetricsRegistry())
    recorder = obs.FlightRecorder()
    obs.set_recorder(recorder)
    rundir_path = Path(rundir)
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    # Ctrl-C lands on the whole foreground process group; the
    # supervisor turns it into per-worker SIGTERMs, so the workers'
    # own SIGINT must be inert or they'd die mid-request.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # SIGUSR2: dump this worker's retained traces to a JSONL in the
    # rundir — live-fleet debugging without touching the serving path.
    if hasattr(signal, "SIGUSR2"):
        dump_path = Path(rundir) / f"traces-{index}-{os.getpid()}.jsonl"
        signal.signal(
            signal.SIGUSR2,
            lambda signum, frame: recorder.dump_jsonl(dump_path),
        )
    service, server, fleet, traces, control = _build_server(spec, index, rundir_path)
    server.start()
    obs.gauge("serve.fleet.worker_index").set(index)
    _write_atomic(
        rundir_path / f"worker-{index}.json",
        {
            "index": index,
            "pid": os.getpid(),
            "port": server.port,
            "model": service.describe(),
        },
    )
    fleet.flush()
    traces.flush()
    while not stop.is_set():
        stop.wait(timeout=spec.flush_interval_s)
        event = control.poll()
        if event is not None:
            cmd = event.get("cmd")
            try:
                if cmd == "reload":
                    if server.registry is not None:
                        # Per-site fan-out: every worker reloads the
                        # named site (or the default) through its own
                        # registry, which also rebinds that site's
                        # tracking sessions.
                        server.registry.reload(
                            event.get("site"), event.get("database")
                        )
                    else:
                        service.reload(event.get("database"))
                        server.sessions.rebind()
                elif cmd == "drain":
                    deadline = event.get("deadline_s")
                    threading.Thread(
                        target=server.drain,
                        args=(None if deadline is None else float(deadline),),
                        name="repro-fleet-drain",
                        daemon=True,
                    ).start()
            except Exception as exc:  # noqa: BLE001 - a bad broadcast must not kill the worker
                obs.counter(
                    "serve.fleet.control_errors", cmd=str(cmd), kind=type(exc).__name__
                ).inc()
        fleet.flush()
        traces.flush()
    report = server.drain()
    server.stop()
    fleet.flush()
    traces.flush()
    _write_atomic(rundir_path / f"drain-{index}.json", dict(report))
    return 0 if report["unfinished"] == 0 else 1


def _worker_entry(spec: WorkerSpec, index: int, rundir: str) -> None:
    raise SystemExit(worker_main(spec, index, rundir))


class Supervisor:
    """Fork, watch, restart and drain a fleet of serve workers."""

    def __init__(self, spec: WorkerSpec, workers: int, rundir: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = int(workers)
        if rundir is None:
            import tempfile

            rundir = tempfile.mkdtemp(prefix="repro-serve-")
        self.rundir = Path(rundir)
        self.rundir.mkdir(parents=True, exist_ok=True)
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._procs: List[Optional[multiprocessing.process.BaseProcess]] = [
            None
        ] * self.workers
        self._placeholder: Optional[socket.socket] = None
        self._stopping = False
        self.restarts = 0
        self._exit_codes: List[int] = []

    # -- port reservation ------------------------------------------------
    def _reserve_port(self) -> None:
        """Pin ``--port 0`` to a concrete port for the fleet's lifetime.

        The placeholder binds with ``SO_REUSEPORT`` but never listens:
        the kernel only delivers connections to *listening* sockets, so
        it receives nothing while guaranteeing the port stays ours —
        a restarting worker rebinds the same number race-free.
        """
        if self.spec.port != 0:
            return
        if not hasattr(socket, "SO_REUSEPORT"):
            raise RuntimeError("--workers needs SO_REUSEPORT (unavailable here)")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.spec.host, 0))
        except BaseException:
            sock.close()
            raise
        self._placeholder = sock
        self.spec.port = sock.getsockname()[1]

    # -- lifecycle -------------------------------------------------------
    def _spawn(self, index: int) -> None:
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(self.spec, index, str(self.rundir)),
            name=f"repro-serve-worker-{index}",
        )
        proc.start()
        self._procs[index] = proc

    def _wait_ready(self, index: int, timeout_s: float = 60.0) -> Dict[str, object]:
        path = self.rundir / f"worker-{index}.json"
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            proc = self._procs[index]
            info = _read_json(path)
            if info.get("pid") == getattr(proc, "pid", None):
                return info
            if proc is not None and proc.exitcode is not None:
                raise RuntimeError(
                    f"worker {index} exited (code {proc.exitcode}) before ready"
                )
            time.sleep(0.05)
        raise RuntimeError(f"worker {index} not ready after {timeout_s}s")

    def start(self) -> List[Dict[str, object]]:
        """Reserve the port, fork every worker, wait for readiness."""
        self._reserve_port()
        for index in range(self.workers):
            self._spawn(index)
        try:
            return [self._wait_ready(i) for i in range(self.workers)]
        except BaseException:
            self.stop(deadline_s=1.0)
            raise

    @property
    def url(self) -> str:
        return f"http://{self.spec.host}:{self.spec.port}"

    def monitor(self, stop: threading.Event, for_seconds: Optional[float] = None) -> None:
        """Restart dead workers until ``stop`` (or the time box) fires."""
        deadline = None if for_seconds is None else time.monotonic() + for_seconds
        while not stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                return
            for index, proc in enumerate(self._procs):
                if proc is None or proc.exitcode is None:
                    continue
                print(
                    f"worker {index} (pid {proc.pid}) exited "
                    f"code={proc.exitcode}; restarting",
                    flush=True,
                )
                obs.counter("serve.fleet.restarts").inc()
                self.restarts += 1
                self._spawn(index)
                try:
                    self._wait_ready(index)
                except RuntimeError as exc:
                    print(f"worker {index} restart failed: {exc}", flush=True)
            stop.wait(timeout=0.2)

    def stop(self, deadline_s: Optional[float] = None) -> Dict[str, object]:
        """SIGTERM the fleet, join, and aggregate the drain reports."""
        self._stopping = True
        for proc in self._procs:
            if proc is not None and proc.exitcode is None:
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except (ProcessLookupError, OSError):
                    pass
        limit = (
            self.spec.drain_deadline_s + 15.0 if deadline_s is None else deadline_s
        )
        joined_deadline = time.monotonic() + limit
        self._exit_codes = []
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.1, joined_deadline - time.monotonic()))
            if proc.exitcode is None:
                proc.terminate()
                proc.join(timeout=2.0)
            self._exit_codes.append(
                proc.exitcode if proc.exitcode is not None else -1
            )
        unfinished = 0
        waited = 0.0
        for index in range(self.workers):
            report = _read_json(self.rundir / f"drain-{index}.json")
            unfinished += int(report.get("unfinished", 0))
            waited = max(waited, float(report.get("waited_s", 0.0)))
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        clean = unfinished == 0 and all(code == 0 for code in self._exit_codes)
        return {
            "drained": clean,
            "unfinished": unfinished,
            "waited_s": round(waited, 4),
            "exit_codes": list(self._exit_codes),
            "restarts": self.restarts,
        }
