"""The reference client for the localization service (stdlib only).

A resilient service is only half the story — the other half is a
client that retries *politely*.  :class:`ServiceClient` wraps
:mod:`http.client` with the behaviours the resilience layer expects
from callers:

* **bounded retries with exponential backoff + full jitter** — retry
  sleep is ``uniform(0, min(cap, base * 2**attempt))``, the decorrelated
  schedule that avoids thundering-herd synchronization after a shed;
* **``Retry-After`` obedience** — a 429/503 hint from the server
  replaces the computed backoff (the server knows its drain rate;
  the client does not);
* **a retry budget** (:class:`RetryBudget`) — a token bucket refilled
  by successful requests, so a hard-down server sees a bounded retry
  *rate* instead of ``max_retries`` times the offered load;
* **deadline propagation** — a per-call ``deadline_ms`` budget becomes
  an absolute deadline; every attempt (including retries) re-stamps the
  *remaining* budget into ``X-Deadline-Ms``, so the server can refuse
  work the client has already given up on.  A spent budget ends the
  call client-side with a ``deadline`` outcome — no retry;
* **trace propagation** — each logical call mints a
  :class:`~repro.obs.TraceContext` (or inherits the caller's bound
  one) and sends ``traceparent`` with a *fresh span id per attempt*,
  so retries appear as sibling edge spans under one trace instead of
  colliding.  ``X-Request-Id`` stays constant across the attempts of
  one call; the server echoes it, and the :class:`ClientReport`
  carries both ids so client-side outcomes join against the server's
  flight-recorder traces (``/debug/traces?trace_id=...``).

Every call returns a :class:`ClientReport` that classifies the outcome
into the error-budget categories the serving and resilience benches
aggregate (``ok`` / ``rejected_429`` / ``deadline_504`` /
``draining_503`` / ``server_5xx`` / ``client_4xx`` /
``transport_error``), so "what fraction of requests were answered or
cleanly rejected" is one dictionary fold away.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import TraceContext, current_context
from repro.serve.wire import canonical_json

__all__ = ["CATEGORIES", "ClientReport", "RetryBudget", "ServiceClient",
           "classify_status", "fold_reports"]

#: Kept in sync with repro.serve.http header constants (no import of the
#: server module: the client must be usable against a remote server with
#: only this module and the stdlib-only obs/wire helpers).
DEADLINE_HEADER = "X-Deadline-Ms"
TRACEPARENT_HEADER = "traceparent"
REQUEST_ID_HEADER = "X-Request-Id"

#: Outcome categories, the shared error-budget vocabulary of
#: BENCH_SERVE / BENCH_RESILIENCE.  "Clean" means the server answered
#: with an intentional, well-formed verdict (incl. rejections);
#: transport errors are the only unclean category.
CATEGORIES = (
    "ok",
    "rejected_429",
    "deadline_504",
    "draining_503",
    "client_4xx",
    "server_5xx",
    "transport_error",
)


def classify_status(status: int) -> str:
    """Map an HTTP status onto the error-budget category vocabulary."""
    if 200 <= status < 300:
        return "ok"
    if status == 429:
        return "rejected_429"
    if status == 504:
        return "deadline_504"
    if status == 503:
        return "draining_503"
    if 400 <= status < 500:
        return "client_4xx"
    return "server_5xx"


class ClientReport:
    """One call's outcome: category, status, parsed body, retry trail.

    ``trace_id`` is the trace the call ran under; ``request_id`` is the
    id the server echoed (falling back to the one the client sent) —
    the join keys against the server's ``/debug/traces`` view.
    """

    __slots__ = ("category", "status", "doc", "attempts", "latency_s",
                 "trace_id", "request_id")

    def __init__(self, category: str, status: Optional[int], doc: object,
                 attempts: int, latency_s: float,
                 trace_id: Optional[str] = None,
                 request_id: Optional[str] = None):
        self.category = category
        self.status = status
        self.doc = doc
        self.attempts = attempts
        self.latency_s = latency_s
        self.trace_id = trace_id
        self.request_id = request_id

    @property
    def ok(self) -> bool:
        return self.category == "ok"

    @property
    def clean(self) -> bool:
        """Answered or *cleanly* rejected (the availability-floor notion)."""
        return self.category != "transport_error"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"ClientReport(category={self.category!r}, status={self.status},"
                f" attempts={self.attempts})")


class RetryBudget:
    """A token bucket bounding the client's total retry *rate*.

    Each retry spends one token; each successful request earns back
    ``refill_per_success`` (capped at ``capacity``).  Against a healthy
    server the bucket stays full and every retry is allowed; against a
    hard-down server the bucket empties and the client degrades to
    first-attempt-only — failing fast instead of tripling the load on
    a service that is already on fire.
    """

    def __init__(self, capacity: float = 10.0, refill_per_success: float = 0.1):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self._tokens = float(capacity)
        self._lock = threading.Lock()

    def try_spend(self) -> bool:
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def note_success(self) -> None:
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.refill_per_success)

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


class ServiceClient:
    """A retrying, deadline-propagating HTTP client for one instance.

    Parameters
    ----------
    host, port:
        The instance to talk to (one persistent HTTP/1.1 connection,
        re-opened transparently after a transport error).
    timeout_s:
        Socket timeout per attempt — the slow-loris bound: a server
        dribbling bytes slower than this is a transport error, not a
        hang.
    max_retries:
        Retry attempts after the first try (retryable outcomes only:
        429, 503 and transport errors; 4xx and 504 are final).
    backoff_base_s, backoff_cap_s:
        Full-jitter schedule: sleep ``uniform(0, min(cap, base*2**n))``
        before retry *n*, unless the server sent ``Retry-After``.
    budget:
        Shared :class:`RetryBudget` (one per client fleet); None gives
        this client its own.
    seed:
        Seeds the jitter RNG so retry timing is reproducible in tests.
    sleep:
        Injectable ``sleep(seconds)`` (tests capture backoff without
        waiting through it).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout_s: float = 10.0,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        budget: Optional[RetryBudget] = None,
        seed: Optional[int] = None,
        sleep=time.sleep,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.budget = budget if budget is not None else RetryBudget()
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._conn: Optional[http.client.HTTPConnection] = None

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "ServiceClient":
        """``http://host:port`` → a client (the common bench spelling)."""
        stripped = url.split("://", 1)[-1].rstrip("/")
        host, _, port = stripped.partition(":")
        return cls(host=host, port=int(port or 80), **kwargs)

    # -- transport -------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _attempt(self, method: str, path: str, body: Optional[bytes],
                 headers: Dict[str, str]) -> Tuple[int, Dict[str, str], object]:
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        except Exception:
            # Any transport-layer failure poisons the persistent
            # connection; drop it so the retry starts from a clean socket.
            self.close()
            raise
        resp_headers = {k.lower(): v for k, v in resp.getheaders()}
        try:
            doc = json.loads(raw) if raw else None
        except ValueError:
            doc = raw.decode("utf-8", errors="replace")
        return resp.status, resp_headers, doc

    # -- the retry loop --------------------------------------------------
    def request(self, method: str, path: str, doc: Optional[object] = None,
                deadline_ms: Optional[float] = None) -> ClientReport:
        """One logical call: attempts, backoff, budget, deadline.

        ``deadline_ms`` is the *total* budget across all attempts; the
        remaining budget is re-stamped into ``X-Deadline-Ms`` on every
        attempt so the server's view of the deadline tracks reality.
        Likewise each attempt sends ``traceparent`` with a fresh span
        id under one per-call trace, and a constant ``X-Request-Id``.
        """
        body = canonical_json(doc) if doc is not None else None
        started = time.monotonic()
        deadline = None if deadline_ms is None else started + float(deadline_ms) / 1000.0
        # One trace per logical call: inherit the caller's bound context
        # (so a traced caller sees this call inside its own trace) or
        # mint a new root.  The request id stays stable across retries —
        # it is the join key, not the span identity.
        ctx = current_context() or TraceContext.mint()
        request_id = ctx.trace_id

        def report(category: str, status: Optional[int], doc: object,
                   echoed_id: Optional[str] = None) -> ClientReport:
            return ClientReport(category, status, doc, attempts,
                                time.monotonic() - started,
                                trace_id=ctx.trace_id,
                                request_id=echoed_id or request_id)

        attempts = 0
        last: Optional[Tuple[str, Optional[int], object, Optional[str]]] = None
        while True:
            headers: Dict[str, str] = {
                TRACEPARENT_HEADER: ctx.child().to_traceparent(),
                REQUEST_ID_HEADER: request_id,
            }
            if body is not None:
                headers["Content-Type"] = "application/json"
            if deadline is not None:
                remaining_ms = 1000.0 * (deadline - time.monotonic())
                if remaining_ms <= 0:
                    # Budget spent between attempts: report the last
                    # server verdict if there was one, else a client-side
                    # deadline outcome.
                    if last is not None:
                        return report(last[0], last[1], last[2], last[3])
                    return report("deadline_504", None,
                                  {"error": "deadline_exceeded",
                                   "detail": "budget spent before first attempt"})
                headers[DEADLINE_HEADER] = f"{remaining_ms:.0f}"
            attempts += 1
            retry_after_s: Optional[float] = None
            try:
                status, resp_headers, resp_doc = self._attempt(method, path, body, headers)
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
                last = ("transport_error", None,
                        {"error": "transport", "detail": f"{type(exc).__name__}: {exc}"},
                        None)
            else:
                category = classify_status(status)
                echoed = resp_headers.get("x-request-id")
                last = (category, status, resp_doc, echoed)
                if category == "ok":
                    self.budget.note_success()
                    return report(category, status, resp_doc, echoed)
                if category not in ("rejected_429", "draining_503"):
                    # 4xx / 504 / 5xx: retrying cannot change the verdict.
                    return report(category, status, resp_doc, echoed)
                hint = resp_headers.get("retry-after")
                if hint is not None:
                    try:
                        retry_after_s = max(0.0, float(hint))
                    except ValueError:
                        retry_after_s = None
            if attempts > self.max_retries or not self.budget.try_spend():
                return report(last[0], last[1], last[2], last[3])
            # Full jitter unless the server told us exactly when to come
            # back; either way never sleep past the caller's deadline.
            if retry_after_s is None:
                cap = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempts - 1)))
                pause = self._rng.uniform(0.0, cap)
            else:
                pause = retry_after_s
            if deadline is not None:
                pause = min(pause, max(0.0, deadline - time.monotonic()))
            if pause > 0:
                self._sleep(pause)

    # -- endpoint sugar --------------------------------------------------
    def locate(self, observation_doc: Dict[str, object],
               deadline_ms: Optional[float] = None,
               site: Optional[str] = None) -> ClientReport:
        """``POST /v1/locate``, or the site-routed variant when a fleet
        server is on the other end and ``site`` is given."""
        path = f"/v1/sites/{site}/locate" if site is not None else "/v1/locate"
        return self.request("POST", path, observation_doc, deadline_ms=deadline_ms)

    def locate_batch(self, observation_docs: Sequence[Dict[str, object]],
                     deadline_ms: Optional[float] = None,
                     site: Optional[str] = None) -> ClientReport:
        path = (f"/v1/sites/{site}/locate/batch" if site is not None
                else "/v1/locate/batch")
        return self.request("POST", path,
                            {"observations": list(observation_docs)},
                            deadline_ms=deadline_ms)

    def track(self, session_id: str, observation_doc: Dict[str, object],
              dt_s: Optional[float] = None,
              deadline_ms: Optional[float] = None) -> ClientReport:
        """One tracking-session step (``POST /v1/track/{session}``).

        Note the retry semantics: a retried step is *at-least-once* —
        a transport error after the server applied the scan re-applies
        it on retry.  Filters tolerate a duplicated scan gracefully
        (it is one more measurement), but sequence-sensitive callers
        should set ``max_retries=0``.
        """
        doc = dict(observation_doc)
        if dt_s is not None:
            doc["dt_s"] = dt_s
        return self.request("POST", f"/v1/track/{session_id}", doc,
                            deadline_ms=deadline_ms)

    def track_status(self, session_id: str) -> ClientReport:
        return self.request("GET", f"/v1/track/{session_id}")

    def track_close(self, session_id: str) -> ClientReport:
        return self.request("DELETE", f"/v1/track/{session_id}")

    def healthz(self) -> ClientReport:
        return self.request("GET", "/healthz")

    def drain(self, deadline_s: Optional[float] = None) -> ClientReport:
        doc = None if deadline_s is None else {"deadline_s": deadline_s}
        return self.request("POST", "/admin/drain", doc)


def fold_reports(reports: Sequence[ClientReport]) -> Dict[str, object]:
    """Aggregate reports into the shared error-budget dictionary."""
    counts = {category: 0 for category in CATEGORIES}
    for report in reports:
        counts[report.category] += 1
    total = len(reports)
    clean = sum(1 for r in reports if r.clean)
    return {
        "total": total,
        "error_budget": counts,
        "answered_ok": counts["ok"],
        "clean": clean,
        "availability": round(clean / total, 6) if total else None,
        "ok_fraction": round(counts["ok"] / total, 6) if total else None,
    }
