"""Stateful tracking sessions for the localization service.

Production localization is a *stream* of scans per moving device —
§6.2's "combination of the historical location value and the current
signal strength value" — not isolated requests.  This module is the
serving-side home of :mod:`repro.algorithms.tracking`:

* :class:`SessionStore` — a bounded map from session id to a live
  tracker.  TTL expiry (a device that stopped reporting ages out) and
  LRU eviction (the store never exceeds ``capacity``) both close the
  session exactly once; an explicit ``DELETE`` does the same.  All
  transitions land in ``serve.sessions.*`` metrics.
* :class:`TrackerFactory` — builds the site-configured filter (kalman /
  bayes / particle) against the service's *current* model generation,
  and rebinds live trackers to a new generation after a hot reload
  without discarding filter state (see each tracker's ``rebind``).
* :class:`TrackingSessions` — the engine: store + factory + a second
  :class:`~repro.serve.batcher.MicroBatcher` named ``track``.  Steps
  from many concurrent sessions are coalesced; trackers that expose
  the measurement split (:attr:`~repro.algorithms.tracking.base.Tracker.
  measurement_localizer`) get their static fixes from **one** vectorized
  ``locate_many`` call per batch instead of N scalar ``locate`` calls —
  the KalmanTracker's per-step ``localizer.locate`` was the hot spot.
  Per-session application happens under the session lock, exactly once;
  a session closed while a step was queued fails *that* step with
  :class:`SessionClosedError` (via :class:`~repro.serve.batcher.
  BatchFailure`) without touching the rest of the batch.

:mod:`repro.serve.http` mounts this as ``POST/GET/DELETE
/v1/track/{session}``; docs/tracking.md covers filters and tradeoffs.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.tracking import (
    DiscreteBayesTracker,
    KalmanTracker,
    ParticleFilterTracker,
    RSSIField,
    Tracker,
)
from repro.serve.batcher import BatchFailure, MicroBatcher
from repro.serve.clock import SystemClock

__all__ = [
    "TRACKER_KINDS",
    "SessionError",
    "UnknownSessionError",
    "SessionClosedError",
    "BadTimestampError",
    "TrackerFactory",
    "TrackingSession",
    "SessionStore",
    "TrackingSessions",
]

#: Filters a site can configure (``repro serve --track-filter``).
TRACKER_KINDS = ("kalman", "bayes", "particle")


class SessionError(RuntimeError):
    """Base class for tracking-session lifecycle errors."""


class UnknownSessionError(SessionError):
    """No live session under that id (never created, expired, or deleted)."""

    def __init__(self, session_id: str):
        super().__init__(f"no live tracking session {session_id!r}")
        self.session_id = session_id


class SessionClosedError(SessionError):
    """The session closed (delete/TTL/LRU) after this step was queued."""

    def __init__(self, session_id: str, reason: Optional[str]):
        super().__init__(
            f"tracking session {session_id!r} closed ({reason or 'closed'}) "
            "before this scan could be applied"
        )
        self.session_id = session_id
        self.reason = reason


class BadTimestampError(SessionError):
    """A client ``ts`` rewound past the rejection window.

    Small regressions (clock skew between a device's cores, NTP
    stepping) are *clamped* to a minimal Δt and counted; a rewind
    beyond ``max_ts_rewind_s`` means the client's clock is lying and
    the scan is rejected — applying it with any Δt would corrupt the
    filter state.
    """

    def __init__(self, session_id: str, ts: float, last_ts: float, limit_s: float):
        super().__init__(
            f"session {session_id!r}: ts {ts} rewinds {last_ts - ts:.3f}s "
            f"behind the previous scan (limit {limit_s}s)"
        )
        self.session_id = session_id
        self.ts = ts
        self.last_ts = last_ts


class TrackerFactory:
    """Build/rebind per-session trackers against the service's live model.

    ``build()`` reads the current :class:`~repro.serve.service.
    LocalizationService` model generation; shared fit products (the
    bayes emission model, the particle radio field) are computed once
    per generation and reused across sessions.  ``rebind(tracker)``
    points an existing tracker at the current generation, preserving
    filter state where the tracker can (see each ``rebind``); it
    returns True iff state survived.
    """

    def __init__(self, service, kind: str = "kalman", bounds=None, **tracker_kwargs):
        if kind not in TRACKER_KINDS:
            raise ValueError(f"unknown tracker kind {kind!r}; pick one of {TRACKER_KINDS}")
        self.service = service
        self.kind = kind
        self.bounds = bounds
        self.tracker_kwargs = dict(tracker_kwargs)
        self._lock = threading.Lock()
        self._generation: Optional[int] = None
        self._emission: Optional[ProbabilisticLocalizer] = None
        self._field: Optional[RSSIField] = None

    def _materials(self):
        """The current model plus per-generation shared fit products."""
        model = self.service.model()
        with self._lock:
            if self._generation != model.generation:
                self._emission = None
                self._field = None
                if self.kind == "bayes":
                    # The serving chain's localizer need not expose
                    # log_likelihoods; the bayes emission is its own
                    # probabilistic fit on the same database.
                    self._emission = ProbabilisticLocalizer().fit(model.db)
                elif self.kind == "particle":
                    self._field = RSSIField(model.db)
                self._generation = model.generation
        return model

    def _bounds_for(self, model) -> Tuple[float, float, float, float]:
        if self.bounds is not None:
            x0, y0, x1, y1 = self.bounds
            return float(x0), float(y0), float(x1), float(y1)
        pos = model.db.positions()
        pad = 5.0  # particles may roam a little past the survey hull
        return (
            float(pos[:, 0].min() - pad),
            float(pos[:, 1].min() - pad),
            float(pos[:, 0].max() + pad),
            float(pos[:, 1].max() + pad),
        )

    def build(self) -> Tracker:
        model = self._materials()
        if self.kind == "kalman":
            return KalmanTracker(model.localizer, **self.tracker_kwargs)
        if self.kind == "bayes":
            return DiscreteBayesTracker(self._emission, model.db, **self.tracker_kwargs)
        return ParticleFilterTracker(
            self._field, self._bounds_for(model), **self.tracker_kwargs
        )

    def rebind(self, tracker: Tracker) -> bool:
        model = self._materials()
        if self.kind == "kalman":
            return tracker.rebind(model.localizer)
        if self.kind == "bayes":
            return tracker.rebind(self._emission, model.db)
        return tracker.rebind(self._field)


class TrackingSession:
    """One device's live filter plus its lifecycle state.

    ``lock`` guards the tracker and the closed flag: a step applies iff
    the session is still open *at apply time*, which is what makes the
    close lifecycle exactly-once — a scan queued before a close either
    applied before it (and counted) or fails with
    :class:`SessionClosedError`, never both, never silently neither.
    """

    __slots__ = (
        "session_id", "tracker", "lock", "created_at", "last_seen",
        "steps", "closed", "close_reason", "last_estimate", "generation",
        "last_ts", "origin_trace",
    )

    def __init__(self, session_id: str, tracker: Tracker, now: float):
        self.session_id = session_id
        self.tracker = tracker
        self.lock = threading.Lock()
        self.created_at = now
        self.last_seen = now
        self.steps = 0
        self.closed = False
        self.close_reason: Optional[str] = None
        self.last_estimate = None
        #: Trace id of the request that created this session — the
        #: lineage every later step's ``track.step`` span carries, so a
        #: device's whole stream joins back to one origin trace (and
        #: survives hot reloads: rebind never touches it).
        self.origin_trace: Optional[str] = None
        #: Latest client timestamp applied (None before the first
        #: ``ts``-carrying scan).  Monotonic by construction: a clamped
        #: regression never moves it backwards.
        self.last_ts: Optional[float] = None

    def close(self, reason: str) -> bool:
        """Flip to closed; True only for the one call that did the flip."""
        with self.lock:
            if self.closed:
                return False
            self.closed = True
            self.close_reason = reason
            return True


class SessionStore:
    """Bounded, TTL'd, LRU-evicting map of live tracking sessions.

    Every access path (create, touch, read, delete) first sweeps
    sessions whose ``last_seen`` is older than ``ttl_s`` — expired
    sessions are unreachable even if no background thread runs.  The
    ``OrderedDict`` is kept in recency order (touch = ``move_to_end``),
    so TTL sweeping and LRU eviction pop from the same end and the
    store can never exceed ``capacity``.  All closes (explicit / TTL /
    LRU) funnel through :meth:`TrackingSession.close`, once each.

    Metrics: ``serve.sessions.created/expired/evicted/closed`` counters
    and the ``serve.sessions.active`` gauge.
    """

    def __init__(
        self,
        factory: Callable[[], Tracker],
        capacity: int = 10000,
        ttl_s: float = 300.0,
        clock=None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self._factory = factory
        self.capacity = int(capacity)
        self.ttl_s = float(ttl_s)
        self._clock = clock if clock is not None else SystemClock()
        self._sessions: "OrderedDict[str, TrackingSession]" = OrderedDict()
        self._lock = threading.Lock()

    # -- internals -------------------------------------------------------
    def _sweep_locked(self, now: float) -> List[TrackingSession]:
        """Pop expired sessions (store lock held); caller closes them."""
        expired = []
        while self._sessions:
            _, sess = next(iter(self._sessions.items()))
            if now - sess.last_seen < self.ttl_s:
                break
            self._sessions.popitem(last=False)
            expired.append(sess)
        return expired

    def _finish(self, expired: Sequence[TrackingSession],
                evicted: Sequence[TrackingSession]) -> None:
        """Close removed sessions outside the store lock (their own
        session locks may be held by an in-flight step)."""
        for sess in expired:
            sess.close("expired")
            obs.counter("serve.sessions.expired").inc()
        for sess in evicted:
            sess.close("evicted")
            obs.counter("serve.sessions.evicted").inc()
        if expired or evicted:
            self._note_active()

    def _note_active(self) -> None:
        with self._lock:
            n = len(self._sessions)
        obs.gauge("serve.sessions.active").set(n)

    # -- access ----------------------------------------------------------
    def obtain(self, session_id: str) -> Tuple[TrackingSession, bool]:
        """Get-or-create the session; returns ``(session, created)``.

        The tracker for a new session is built *outside* the store lock
        (a bayes build is O(n²) in grid size); a concurrent create for
        the same id simply wins the race and the loser's tracker is
        discarded.
        """
        now = self._clock.monotonic()
        with self._lock:
            expired = self._sweep_locked(now)
            sess = self._sessions.get(session_id)
            if sess is not None:
                sess.last_seen = now
                self._sessions.move_to_end(session_id)
        self._finish(expired, ())
        if sess is not None:
            return sess, False
        tracker = self._factory()
        fresh = TrackingSession(session_id, tracker, self._clock.monotonic())
        with self._lock:
            now = self._clock.monotonic()
            expired = self._sweep_locked(now)
            sess = self._sessions.get(session_id)
            if sess is not None:  # lost the create race; reuse the winner
                sess.last_seen = now
                self._sessions.move_to_end(session_id)
                created = False
            else:
                evicted = []
                while len(self._sessions) >= self.capacity:
                    _, victim = self._sessions.popitem(last=False)
                    evicted.append(victim)
                self._sessions[session_id] = fresh
                sess, created = fresh, True
        if created:
            obs.counter("serve.sessions.created").inc()
            self._finish(expired, evicted)
        else:
            self._finish(expired, ())
        self._note_active()
        return sess, created

    def get(self, session_id: str) -> TrackingSession:
        """The live session, touching its recency; raises
        :class:`UnknownSessionError` for absent *or expired* ids."""
        now = self._clock.monotonic()
        with self._lock:
            expired = self._sweep_locked(now)
            sess = self._sessions.get(session_id)
            if sess is not None:
                sess.last_seen = now
                self._sessions.move_to_end(session_id)
        self._finish(expired, ())
        if sess is None:
            raise UnknownSessionError(session_id)
        return sess

    def close(self, session_id: str, reason: str = "closed") -> TrackingSession:
        """Remove and close the session exactly once.

        The pop happens under the store lock, so of two concurrent
        DELETEs exactly one gets the session and the other sees
        :class:`UnknownSessionError` — the idempotent-delete contract.
        """
        now = self._clock.monotonic()
        with self._lock:
            expired = self._sweep_locked(now)
            sess = self._sessions.pop(session_id, None)
        self._finish(expired, ())
        if sess is None:
            raise UnknownSessionError(session_id)
        sess.close(reason)
        obs.counter("serve.sessions.closed").inc()
        self._note_active()
        return sess

    def rebind(self, rebinder: Callable[[Tracker], bool]) -> Dict[str, int]:
        """Point every live tracker at the current model generation.

        Runs ``rebinder`` under each session's lock (so it cannot race
        an in-flight step); returns counts of sessions whose filter
        state survived (``kept``) vs reset (``reset``).
        """
        with self._lock:
            sessions = list(self._sessions.values())
        kept = reset = 0
        for sess in sessions:
            with sess.lock:
                if sess.closed:
                    continue
                if rebinder(sess.tracker):
                    kept += 1
                else:
                    reset += 1
        obs.counter("serve.sessions.rebound", outcome="kept").inc(kept)
        obs.counter("serve.sessions.rebound", outcome="reset").inc(reset)
        return {"sessions": kept + reset, "kept": kept, "reset": reset}

    def active(self) -> int:
        with self._lock:
            return len(self._sessions)

    def occupancy(self) -> Dict[str, object]:
        """JSON-safe store occupancy for ``/healthz``."""
        now = self._clock.monotonic()
        with self._lock:
            expired = self._sweep_locked(now)
            n = len(self._sessions)
        self._finish(expired, ())
        return {"active": n, "capacity": self.capacity, "ttl_s": self.ttl_s}


class _StepJob:
    """One queued scan: which session, which observation, which Δt.

    ``dt_s`` is None when the client sent a ``ts`` instead — the Δt is
    then *derived at apply time* under the session lock (concurrent
    steps of one session would otherwise race on ``last_ts``).
    """

    __slots__ = ("session", "observation", "dt_s", "ts", "ctx")

    def __init__(self, session: TrackingSession, observation,
                 dt_s: Optional[float], ts: Optional[float] = None,
                 ctx=None):
        self.session = session
        self.observation = observation
        self.dt_s = dt_s
        self.ts = ts
        # The originating request's TraceContext (or None): re-bound
        # around the per-session apply so each coalesced step's
        # ``track.step`` span lands in its own request's trace.
        self.ctx = ctx


class TrackingSessions:
    """The serving-side tracking engine: store + factory + micro-batcher.

    :meth:`step` queues one scan for one session on the ``track``
    batcher; the dispatch groups the batch's jobs by measurement
    localizer, answers each group with **one** ``locate_many`` call,
    then applies each measurement to its session under the session
    lock.  Bayes trackers group the same way on their emission model —
    one ``log_likelihood_matrix`` per batch feeds every session's
    update; trackers with neither split (particle) step serially
    inside the same dispatch.  Results resolve each
    job's future with ``(estimate, seq)``; per-job failures (a closed
    session, a bad Δt or timestamp) ride :class:`~repro.serve.batcher.
    BatchFailure` so they never fail their batch-mates.
    """

    def __init__(
        self,
        service,
        kind: str = "kalman",
        capacity: int = 10000,
        ttl_s: float = 300.0,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_queue: int = 512,
        clock=None,
        bounds=None,
        tracker_kwargs: Optional[Dict[str, object]] = None,
        default_dt_s: float = 1.0,
        max_ts_rewind_s: float = 60.0,
        min_dt_s: float = 1e-3,
        name: Optional[str] = None,
    ):
        if default_dt_s <= 0:
            raise ValueError(f"default_dt_s must be > 0, got {default_dt_s}")
        if max_ts_rewind_s < 0:
            raise ValueError(f"max_ts_rewind_s must be >= 0, got {max_ts_rewind_s}")
        if min_dt_s <= 0:
            raise ValueError(f"min_dt_s must be > 0, got {min_dt_s}")
        self.service = service
        self.clock = clock if clock is not None else SystemClock()
        self.factory = TrackerFactory(
            service, kind=kind, bounds=bounds, **(tracker_kwargs or {})
        )
        self.store = SessionStore(
            self.factory.build, capacity=capacity, ttl_s=ttl_s, clock=self.clock
        )
        # ``name`` distinguishes per-site step dispatchers in a fleet
        # (``track@<site>``); the default keeps single-site metric
        # series (``batcher=track``) exactly as before.
        self.batcher = MicroBatcher(
            self._step_batch,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            clock=self.clock,
            name=name or "track",
        )
        self.default_dt_s = float(default_dt_s)
        #: Rewind tolerance for client timestamps: smaller regressions
        #: clamp to ``min_dt_s``, larger ones reject the scan.
        self.max_ts_rewind_s = float(max_ts_rewind_s)
        self.min_dt_s = float(min_dt_s)

    @property
    def kind(self) -> str:
        return self.factory.kind

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "TrackingSessions":
        self.batcher.start()
        return self

    def stop(self) -> None:
        """Stop the step dispatcher, draining every accepted step first."""
        self.batcher.stop()

    def __enter__(self) -> "TrackingSessions":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def alive(self) -> bool:
        return self.batcher.alive

    # -- the API the HTTP layer calls ------------------------------------
    def step(self, session_id: str, observation, dt_s: Optional[float] = None,
             deadline: Optional[float] = None, ts: Optional[float] = None):
        """Queue one scan; returns ``(future, created)``.

        The future resolves with ``(estimate, seq)`` — ``seq`` is the
        1-based count of scans applied to the session — or fails with
        the batcher's deadline/queue errors, :class:`SessionClosedError`
        or :class:`BadTimestampError`.

        Δt precedence: an explicit ``dt_s`` always wins; otherwise a
        client ``ts`` (seconds, any consistent epoch) derives Δt from
        the session's previous ``ts`` with a monotonic-regression
        guard; with neither, ``default_dt_s`` applies.
        """
        if dt_s is not None:
            dt: Optional[float] = float(dt_s)
            if dt <= 0:
                raise ValueError(f"dt_s must be > 0, got {dt_s}")
        elif ts is not None:
            dt = None  # resolved at apply time, under the session lock
        else:
            dt = self.default_dt_s
        if ts is not None:
            ts = float(ts)
            if not math.isfinite(ts):
                raise ValueError(f"ts must be finite, got {ts}")
        session, created = self.store.obtain(session_id)
        ctx = obs.current_context()
        if created and ctx is not None:
            session.origin_trace = ctx.trace_id
        future = self.batcher.submit(
            _StepJob(session, observation, dt, ts, ctx=ctx), deadline=deadline
        )
        return future, created

    def current(self, session_id: str):
        """``(last_estimate, seq)`` for a live session (estimate may be
        None before the first applied scan)."""
        sess = self.store.get(session_id)
        with sess.lock:
            return sess.last_estimate, sess.steps

    def close(self, session_id: str) -> Dict[str, object]:
        sess = self.store.close(session_id)
        return {"steps": sess.steps}

    def rebind(self) -> Dict[str, int]:
        """Re-point every live session at the current model generation
        (called after a successful hot reload)."""
        return self.store.rebind(self.factory.rebind)

    def health_check(self):
        """(ok, detail) for ``/healthz``: store occupancy + dispatcher."""
        detail = dict(self.store.occupancy())
        detail["filter"] = self.kind
        return True, detail

    # -- the batched dispatch --------------------------------------------
    def _resolve_dt_locked(self, session: TrackingSession, job: _StepJob) -> float:
        """Turn a job's (dt_s, ts) into the Δt to step with.

        Runs under the session lock: concurrent steps of one session
        serialize here, so each sees its predecessor's ``last_ts``.
        An explicit ``dt_s`` always wins; a ``ts`` still advances
        ``last_ts`` (to its max — the guard stays monotonic either
        way).  Derived Δt: forward gap if ``ts`` advanced; a small
        rewind (device clock skew, NTP stepping) clamps to ``min_dt_s``
        and counts ``tracking.bad_timestamps{kind=clamped}``; a rewind
        past ``max_ts_rewind_s`` raises :class:`BadTimestampError`
        (counted as ``kind=rejected``) — the clock is lying and no Δt
        would be right.
        """
        ts, last = job.ts, session.last_ts
        if ts is not None and last is not None and last - ts > self.max_ts_rewind_s:
            obs.counter("tracking.bad_timestamps", kind="rejected").inc()
            raise BadTimestampError(
                session.session_id, ts, last, self.max_ts_rewind_s
            )
        if job.dt_s is not None:
            dt = job.dt_s
        elif last is None:
            # First ts-carrying scan: nothing to difference against.
            dt = self.default_dt_s
        elif ts > last:
            dt = ts - last
        else:
            obs.counter("tracking.bad_timestamps", kind="clamped").inc()
            dt = self.min_dt_s
        if ts is not None and (last is None or ts > last):
            session.last_ts = ts
        return dt

    def _apply(self, job: _StepJob, measurement=None, loglik=None):
        """Apply one job under its originating request's trace context.

        The batcher dispatches under the *first* job's context; each
        job here re-binds its own, so its ``track.step`` span (stamped
        with the session id and the session's origin-trace lineage)
        lands in its own request's trace — N coalesced steps, N
        correctly-attributed traces, one shared dispatch span linking
        them.
        """
        if job.ctx is None:
            return self._apply_inner(job, measurement, loglik)
        session = job.session
        with obs.bind(job.ctx):
            with obs.span(
                "track.step",
                session=session.session_id,
                lineage=session.origin_trace,
            ):
                return self._apply_inner(job, measurement, loglik)

    def _apply_inner(self, job: _StepJob, measurement=None, loglik=None):
        session = job.session
        try:
            with session.lock:
                if session.closed:
                    raise SessionClosedError(session.session_id, session.close_reason)
                dt = self._resolve_dt_locked(session, job)
                if measurement is not None:
                    est = session.tracker.step_with_measurement(
                        measurement, job.observation, dt
                    )
                elif loglik is not None:
                    est = session.tracker.step_with_loglik(
                        loglik, job.observation, dt
                    )
                else:
                    est = session.tracker.step(job.observation, dt)
                session.steps += 1
                session.last_estimate = est
                seq = session.steps
            obs.counter("serve.track.steps").inc()
            return est, seq
        except SessionClosedError as exc:
            obs.counter("serve.track.step_errors", kind="session_closed").inc()
            return BatchFailure(exc)
        except Exception as exc:  # noqa: BLE001 - one bad step, one failed future
            obs.counter("serve.track.step_errors", kind=type(exc).__name__).inc()
            return BatchFailure(exc)

    def _step_batch(self, jobs: Sequence[_StepJob]):
        """Dispatch one coalesced batch of session steps.

        Groups jobs by measurement localizer identity, runs one
        ``locate_many`` per group (normally exactly one group: every
        kalman session of one model generation shares the chain), then
        applies each measurement under its session's lock.  Trackers
        with an *emission* split instead (bayes) group the same way:
        one ``log_likelihood_matrix`` call per emission model, each row
        fed to ``step_with_loglik`` — bit-identical to serial stepping
        because the matrix rows are bit-identical to per-observation
        ``log_likelihoods``.  Trackers with neither split (particle)
        step serially inside the same dispatch.
        """
        results = [None] * len(jobs)
        groups: Dict[int, Tuple[object, List[int]]] = {}
        em_groups: Dict[int, Tuple[object, List[int]]] = {}
        for i, job in enumerate(jobs):
            loc = job.session.tracker.measurement_localizer
            if loc is not None:
                groups.setdefault(id(loc), (loc, []))[1].append(i)
                continue
            em = job.session.tracker.emission_localizer
            if em is not None:
                em_groups.setdefault(id(em), (em, []))[1].append(i)
            else:
                results[i] = self._apply(job)
        for loc, idxs in groups.values():
            try:
                measurements = loc.locate_many([jobs[i].observation for i in idxs])
            except Exception as exc:  # noqa: BLE001 - fail this group only
                for i in idxs:
                    results[i] = BatchFailure(exc)
                continue
            obs.histogram("serve.track.measurement_batch").observe(len(idxs))
            for i, m in zip(idxs, measurements):
                results[i] = self._apply(jobs[i], measurement=m)
        for em, idxs in em_groups.values():
            try:
                matrix = em.log_likelihood_matrix(
                    [jobs[i].observation for i in idxs]
                )
            except Exception as exc:  # noqa: BLE001 - fail this group only
                for i in idxs:
                    results[i] = BatchFailure(exc)
                continue
            obs.histogram("serve.track.emission_batch").observe(len(idxs))
            for k, i in enumerate(idxs):
                results[i] = self._apply(jobs[i], loglik=matrix[k])
        return results
