"""The localization service layer: HTTP front door over the toolkit.

The ROADMAP's production target needs more than a library: it needs a
process that accepts observations from the network and answers them at
the throughput the vectorized scoring engine (PR 3) already delivers
offline.  This package is that front door, stdlib-only like the rest
of the serving substrate:

* :mod:`repro.serve.batcher` — :class:`MicroBatcher`, the concurrency
  heart: single requests from many connections are collected for up to
  ``max_wait_ms`` (or ``max_batch``) and dispatched as **one**
  ``locate_many`` call, so live traffic rides the same chunked/sharded
  kernels as bulk scoring.  Bounded queue (admission control),
  per-request deadlines, injectable clock.
* :mod:`repro.serve.service` — :class:`LocalizationService`, model
  lifecycle: load + warm a fitted localizer from a training database,
  atomic hot-reload, and the dispatch path the batcher calls.
* :mod:`repro.serve.wire` — the JSON wire format (observations in,
  estimates out), deterministic so HTTP answers are bit-for-bit
  comparable with direct ``locate_many`` results.
* :mod:`repro.serve.http` — :class:`LocalizationHTTPServer`:
  ``POST /v1/locate``, ``POST /v1/locate/batch``, ``GET /healthz``,
  ``GET /metrics``, ``POST /admin/reload``; 429 + ``Retry-After`` on
  overflow; full :mod:`repro.obs` instrumentation.
* :mod:`repro.serve.sessions` — stateful tracking sessions
  (:class:`TrackingSessions`): a bounded TTL+LRU :class:`SessionStore`
  of live filters (kalman / bayes / particle) behind
  ``POST/GET/DELETE /v1/track/{session}``, with concurrent session
  steps coalesced onto one vectorized measurement pass.
* :mod:`repro.serve.resilience` — the degraded-conditions substrate:
  per-tier circuit breakers (:class:`TierBreakerBoard`), adaptive
  admission control (:class:`AdmissionController`, priority classes,
  drain-rate-derived ``Retry-After``) and the chaos harness
  (:class:`ChaosPolicy`) behind ``repro serve --chaos``.
* :mod:`repro.serve.client` — :class:`ServiceClient`, the reference
  stdlib client: bounded retries with exponential backoff + full
  jitter, a retry budget, ``Retry-After`` obedience and
  ``X-Deadline-Ms`` deadline propagation.
* :mod:`repro.serve.clock` — real and manual time sources (the manual
  one drives wait-timeout tests without real sleeps).
* :mod:`repro.serve.registry` — multi-site fleet serving
  (``repro serve --sites <fleet>``): a :class:`ModelRegistry` maps
  site ids to fitted models with a bounded LRU of resident sites —
  lazy single-flight loading, pinned-while-in-flight eviction, and
  per-site generation counters that survive evict/reload cycles.
  Routed through ``/v1/sites/{id}/...``; docs/sites.md has the story.
* :mod:`repro.serve.workers` — multi-process scale-out
  (``repro serve --workers N``): a :class:`Supervisor` preforks N
  workers sharing one ``SO_REUSEPORT`` port, restarts crashed ones,
  fans out admin commands, and aggregates fleet metrics — frozen model
  packs (:mod:`repro.core.frozenpack`) keep the N model copies at one
  set of physical pages via mmap.

``repro serve <training.tdb>`` (see :mod:`repro.cli`) runs it from the
command line; docs/serving.md documents endpoints and knobs,
docs/resilience.md the overload/breaker/drain behaviour.
"""

from repro.serve.batcher import (
    BatchFailure,
    DeadlineExceededError,
    MicroBatcher,
    QueueFullError,
)
from repro.serve.client import ClientReport, RetryBudget, ServiceClient
from repro.serve.clock import ManualClock, SystemClock
from repro.serve.http import DEADLINE_HEADER, LocalizationHTTPServer
from repro.serve.resilience import (
    AdmissionController,
    ChaosError,
    ChaosPolicy,
    CircuitBreaker,
    Priority,
    TierBreakerBoard,
    compute_retry_after_s,
)
from repro.serve.registry import (
    FLEET_MANIFEST,
    ModelRegistry,
    SiteDefinition,
    SiteRuntime,
    UnknownSiteError,
    load_fleet,
    write_fleet_manifest,
)
from repro.serve.service import LocalizationService
from repro.serve.sessions import (
    BadTimestampError,
    SessionClosedError,
    SessionStore,
    TrackerFactory,
    TrackingSession,
    TrackingSessions,
    UnknownSessionError,
)
from repro.serve.workers import (
    ControlChannel,
    FleetMetrics,
    Supervisor,
    WorkerSpec,
    worker_main,
)
from repro.serve.wire import (
    WireError,
    canonical_json,
    estimate_to_json,
    observation_from_json,
    track_estimate_to_json,
)

__all__ = [
    "AdmissionController",
    "BadTimestampError",
    "BatchFailure",
    "ChaosError",
    "ChaosPolicy",
    "CircuitBreaker",
    "ClientReport",
    "ControlChannel",
    "DEADLINE_HEADER",
    "DeadlineExceededError",
    "FLEET_MANIFEST",
    "FleetMetrics",
    "LocalizationHTTPServer",
    "LocalizationService",
    "ManualClock",
    "MicroBatcher",
    "ModelRegistry",
    "Priority",
    "QueueFullError",
    "RetryBudget",
    "ServiceClient",
    "SessionClosedError",
    "SessionStore",
    "SiteDefinition",
    "SiteRuntime",
    "Supervisor",
    "SystemClock",
    "TierBreakerBoard",
    "TrackerFactory",
    "TrackingSession",
    "TrackingSessions",
    "UnknownSessionError",
    "UnknownSiteError",
    "WireError",
    "WorkerSpec",
    "canonical_json",
    "compute_retry_after_s",
    "estimate_to_json",
    "load_fleet",
    "observation_from_json",
    "track_estimate_to_json",
    "worker_main",
    "write_fleet_manifest",
]
