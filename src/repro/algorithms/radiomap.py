"""Continuous radio maps: interpolating the survey into a field.

Two interpolators turn the training database's per-point means into a
continuous RSSI field over the floor, behind one protocol
(``expected_rssi(positions) -> (n, n_aps)``, ``sigma_db``):

* :class:`IDWRadioMap` — inverse-distance weighting over the ``k``
  nearest training points.  Cheap, local, the classic choice (this is
  the engine behind :class:`~repro.algorithms.tracking.particle.RSSIField`).
* :class:`GPRadioMap` — Gaussian-process regression with a squared-
  exponential kernel per AP.  Principled uncertainty, smooth fields,
  and it extrapolates with a trend instead of plateauing; the standard
  "modern" radio-map construction.  Exact GP — the survey is 30–100
  points, so the Cholesky solve is trivial.

The GP regresses the *residual* from a fitted log-distance trend when
AP positions are known, or from the constant mean otherwise; kernel
hyper-parameters (signal σ, length scale, noise) default to physically
sensible values and can be tuned by maximum marginal likelihood over a
small grid (:meth:`GPRadioMap.fit_hyperparameters`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase

#: RSSI assumed where an AP was never heard during training (detection floor).
UNHEARD_FLOOR_DBM = -95.0


class IDWRadioMap:
    """Inverse-distance-weighted field (see RSSIField; kept thin here)."""

    def __init__(self, db: TrainingDatabase, k: int = 4, min_std_db: float = 1.0):
        from repro.algorithms.tracking.particle import RSSIField

        self._field = RSSIField(db, k=k, min_std_db=min_std_db)

    @property
    def sigma_db(self) -> np.ndarray:
        return self._field.sigma_db

    def expected_rssi(self, positions: np.ndarray) -> np.ndarray:
        return self._field.expected_rssi(positions)


class GPRadioMap:
    """Per-AP exact Gaussian-process regression of the radio map.

    Parameters
    ----------
    db:
        The training database (means per location feed the GP).
    length_scale_ft:
        Kernel length scale; ~the shadowing correlation length.
    signal_sigma_db:
        Kernel signal standard deviation (prior residual spread).
    noise_sigma_db:
        Observation noise on the training means (temporal noise shrunk
        by the dwell averaging — a fraction of a dB for 90 s dwells).
    ap_positions:
        Optional BSSID → position; when given, a log-distance trend is
        fitted per AP and the GP models only its residual, which makes
        extrapolation behave physically.
    """

    def __init__(
        self,
        db: TrainingDatabase,
        length_scale_ft: float = 10.0,
        signal_sigma_db: float = 5.0,
        noise_sigma_db: float = 1.0,
        ap_positions: Optional[Dict[str, Point]] = None,
    ):
        if len(db) == 0:
            raise ValueError("training database has no locations")
        if length_scale_ft <= 0 or signal_sigma_db <= 0 or noise_sigma_db <= 0:
            raise ValueError("GP hyper-parameters must be positive")
        self.db = db
        self.length_scale_ft = float(length_scale_ft)
        self.signal_sigma_db = float(signal_sigma_db)
        self.noise_sigma_db = float(noise_sigma_db)
        self.ap_positions = dict(ap_positions or {})
        self._train_x = db.positions()  # (L, 2)
        means = db.mean_matrix()
        self._train_y = np.where(np.isfinite(means), means, UNHEARD_FLOOR_DBM)
        stds = db.std_matrix()
        per_ap = np.where(
            np.isfinite(stds), stds, 1.0
        ).mean(axis=0)
        self._sigma = np.maximum(per_ap, 1.0)
        self._fit()

    # ------------------------------------------------------------------
    def _trend(self, positions: np.ndarray) -> np.ndarray:
        """Per-AP mean function at ``positions``: log-distance or constant."""
        out = np.empty((positions.shape[0], len(self.db.bssids)))
        for j, bssid in enumerate(self.db.bssids):
            ap = self.ap_positions.get(bssid)
            if ap is None or self._trend_params[j] is None:
                out[:, j] = self._train_y[:, j].mean()
            else:
                p0, n = self._trend_params[j]
                d = np.maximum(np.hypot(positions[:, 0] - ap.x, positions[:, 1] - ap.y), 1.0)
                out[:, j] = p0 - 10.0 * n * np.log10(d)
        return out

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        return self.signal_sigma_db**2 * np.exp(-0.5 * d2 / self.length_scale_ft**2)

    def _fit(self) -> None:
        from repro.algorithms.regression import fit_log_distance

        self._trend_params = []
        for j, bssid in enumerate(self.db.bssids):
            ap = self.ap_positions.get(bssid)
            params = None
            if ap is not None:
                d = np.hypot(self._train_x[:, 0] - ap.x, self._train_x[:, 1] - ap.y)
                keep = d > 0
                if keep.sum() >= 2:
                    try:
                        fit = fit_log_distance(d[keep], self._train_y[keep, j])
                        params = (fit.p0_dbm, fit.exponent)
                    except ValueError:
                        params = None
            self._trend_params.append(params)

        K = self._kernel(self._train_x, self._train_x)
        K[np.diag_indices_from(K)] += self.noise_sigma_db**2
        self._cho = cho_factor(K, lower=True)
        self._residuals = self._train_y - self._trend(self._train_x)  # (L, A)
        self._alpha = cho_solve(self._cho, self._residuals)  # (L, A)

    # ------------------------------------------------------------------
    @property
    def sigma_db(self) -> np.ndarray:
        """Per-AP emission σ for likelihood evaluation (training std)."""
        return self._sigma.copy()

    def expected_rssi(self, positions: np.ndarray) -> np.ndarray:
        """(n, n_aps) posterior-mean RSSI at arbitrary positions."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        k_star = self._kernel(pos, self._train_x)  # (n, L)
        return self._trend(pos) + k_star @ self._alpha

    def posterior_std(self, positions: np.ndarray) -> np.ndarray:
        """(n, n_aps) posterior standard deviation (same for all APs by
        construction: the kernel is shared, only the data differ)."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        k_star = self._kernel(pos, self._train_x)
        v = cho_solve(self._cho, k_star.T)  # (L, n)
        var = self.signal_sigma_db**2 - (k_star * v.T).sum(axis=1)
        std = np.sqrt(np.maximum(var, 0.0))
        return np.repeat(std[:, None], len(self.db.bssids), axis=1)

    def log_marginal_likelihood(self) -> float:
        """Summed over APs — the hyper-parameter selection criterion."""
        L = self._cho[0]
        logdet = 2.0 * np.log(np.diag(L)).sum()
        n = self._train_x.shape[0]
        quad = (self._residuals * self._alpha).sum(axis=0)  # per AP
        return float(
            (-0.5 * quad - 0.5 * logdet - 0.5 * n * np.log(2 * np.pi)).sum()
        )

    def fit_hyperparameters(
        self,
        length_scales=(5.0, 8.0, 12.0, 20.0),
        signal_sigmas=(3.0, 5.0, 8.0),
    ) -> Tuple[float, float]:
        """Grid-search (ℓ, σ_f) by marginal likelihood; refits in place."""
        best = (self.length_scale_ft, self.signal_sigma_db)
        best_lml = self.log_marginal_likelihood()
        for ls in length_scales:
            for sf in signal_sigmas:
                self.length_scale_ft, self.signal_sigma_db = float(ls), float(sf)
                self._fit()
                lml = self.log_marginal_likelihood()
                if lml > best_lml:
                    best, best_lml = (float(ls), float(sf)), lml
        self.length_scale_ft, self.signal_sigma_db = best
        self._fit()
        return best
