"""Least-squares multilateration (§2.4's geometric machinery, done right).

The paper describes the geometric family as "the most widespread and
mature of the localization approaches … used in the GPS and the Cricket
location system" and promises multi-lateration "explained in detail" —
this module is that procedure.  Given anchors ``O_i`` and ranges
``d_i``, subtracting the circle equation of a reference anchor from the
others linearizes the system:

.. math::

    2(x_i - x_r)x + 2(y_i - y_r)y =
        d_r^2 - d_i^2 + x_i^2 - x_r^2 + y_i^2 - y_r^2

which is solved in the least-squares sense, optionally followed by a
few Gauss–Newton refinement steps on the true nonlinear residuals.

Two front ends share the solver:

* :class:`MultilaterationLocalizer` — an RSSI localizer (fits per-AP
  inverse-square models like §5.2 but replaces the circle/median
  construction with least squares); the natural ablation against the
  paper's hand-rolled geometry.
* :func:`solve_multilateration` — raw anchors+ranges, used by the UWB
  extension (§6.3) where ranges come from time-of-arrival.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.algorithms.regression import FitResult, PackedRanging, fit_per_ap
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase


def solve_multilateration(
    anchors: Sequence[Point],
    ranges_ft: Sequence[float],
    refine_iterations: int = 3,
) -> Point:
    """Position from ≥3 anchors and their measured ranges.

    Linearized least squares (reference anchor = the one with the
    shortest range, the most trustworthy circle), then Gauss–Newton
    refinement of the nonlinear range residuals.
    """
    if len(anchors) != len(ranges_ft):
        raise ValueError(f"{len(anchors)} anchors vs {len(ranges_ft)} ranges")
    if len(anchors) < 3:
        raise ValueError(f"multilateration needs >= 3 anchors, got {len(anchors)}")
    xy = np.array([[p.x, p.y] for p in anchors], dtype=float)
    d = np.asarray(ranges_ft, dtype=float)
    if (d < 0).any() or not np.isfinite(d).all():
        raise ValueError(f"ranges must be finite and non-negative, got {d}")

    r = int(np.argmin(d))  # reference anchor
    others = [i for i in range(len(anchors)) if i != r]
    A = 2.0 * (xy[others] - xy[r][None, :])
    b = (
        d[r] ** 2
        - d[others] ** 2
        + (xy[others] ** 2).sum(axis=1)
        - (xy[r] ** 2).sum()
    )
    est, *_ = np.linalg.lstsq(A, b, rcond=None)

    for _ in range(refine_iterations):
        diff = est[None, :] - xy  # (n, 2)
        dist = np.hypot(diff[:, 0], diff[:, 1])
        safe = np.maximum(dist, 1e-9)
        resid = dist - d
        jac = diff / safe[:, None]
        step, *_ = np.linalg.lstsq(jac, resid, rcond=None)
        est = est - step
    return Point(float(est[0]), float(est[1]))


def residual_rms(anchors: Sequence[Point], ranges_ft: Sequence[float], p: Point) -> float:
    """RMS range residual at ``p`` — the solver's goodness-of-fit."""
    xy = np.array([[a.x, a.y] for a in anchors], dtype=float)
    d = np.asarray(ranges_ft, dtype=float)
    dist = np.hypot(xy[:, 0] - p.x, xy[:, 1] - p.y)
    return float(np.sqrt(((dist - d) ** 2).mean()))


@register_algorithm("multilateration")
class MultilaterationLocalizer(Localizer):
    """RSSI → distances (per-AP inverse-square fits) → least squares.

    Same Phase 1 as the geometric approach; Phase 2 swaps the paper's
    ring-intersection/median construction for the closed-form solver,
    isolating how much of §5.2's error is the estimator rather than the
    ranging.
    """

    def __init__(self, ap_positions: Dict[str, Point], min_aps: int = 3):
        if not ap_positions:
            raise ValueError("multilateration needs AP positions")
        if min_aps < 3:
            raise ValueError(f"min_aps must be >= 3, got {min_aps}")
        self.ap_positions = dict(ap_positions)
        self.min_aps = int(min_aps)
        self._fits: Optional[Dict[str, FitResult]] = None
        self._bssids: Optional[List[str]] = None
        self._packed: Optional[PackedRanging] = None

    def fit(self, db: TrainingDatabase) -> "MultilaterationLocalizer":
        self._bssids = list(db.bssids)
        self._fits = fit_per_ap(db, self.ap_positions)
        if len(self._fits) < self.min_aps:
            raise ValueError(
                f"only {len(self._fits)} usable AP fit(s); need >= {self.min_aps}"
            )
        # Adopt mmap-shared ranging tables from a frozen pack when its
        # AP-map fingerprint matches (byte-identical to from_fits).
        from repro.core.frozenpack import frozen_ranging_for

        frozen = frozen_ranging_for(db, self.ap_positions)
        self._packed = (
            frozen if frozen is not None
            else PackedRanging.from_fits(self._fits, self._bssids)
        )
        return self

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_fits")
        observation = self._aligned(observation, self._bssids)
        obs = observation.mean_rssi()
        if obs.shape[0] != len(self._bssids):
            raise ValueError(
                f"observation has {obs.shape[0]} AP columns, "
                f"training had {len(self._bssids)}"
            )
        return self._locate_from_row(self._packed.distances(obs[None, :])[0])

    def _locate_from_row(self, row: np.ndarray) -> LocationEstimate:
        """One packed-ranging row → estimate (shared by both paths)."""
        anchors: List[Point] = []
        ranges: List[float] = []
        used: List[str] = []
        for f, bssid in enumerate(self._packed.bssids):
            if not np.isfinite(row[f]):
                continue
            anchors.append(self.ap_positions[bssid])
            ranges.append(float(row[f]))
            used.append(bssid)
        if len(anchors) < self.min_aps:
            return LocationEstimate(
                position=None,
                valid=False,
                details={"reason": f"only {len(anchors)} ranged AP(s)"},
            )
        position = solve_multilateration(anchors, ranges)
        rms = residual_rms(anchors, ranges, position)
        return LocationEstimate(
            position=position,
            score=-rms,
            valid=True,
            details={"ranges_ft": dict(zip(used, ranges)), "residual_rms_ft": rms},
        )

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`).

        Ranging runs as one packed ``(M, F)`` bisection pass; the
        per-observation least-squares solve then sees exactly the
        anchors/ranges the scalar path would have built.
        """
        self._check_fitted("_fits")
        obs_rows = self._mean_rows(observations, self._bssids)
        if obs_rows.shape[1] != len(self._bssids):
            raise ValueError(
                f"observation has {obs_rows.shape[1]} AP columns, "
                f"training had {len(self._bssids)}"
            )
        rows = self._packed.distances(obs_rows)
        return [self._locate_from_row(row) for row in rows]
