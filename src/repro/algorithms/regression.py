"""Least-squares signal-strength ↔ distance fits (paper §5.2, Figure 4).

Phase 1 of the geometric approach "identif[ies] the relationship between
the distance and the signal strength … us[ing] a reverse square formula
… least-square regression".  The model is linear in its coefficients —

.. math::  SS = a\\,d^{-2} + b\\,d^{-1} + c

— so the fit is one ordinary least-squares solve on the design matrix
``[1/d², 1/d, 1]``.  :func:`fit_inverse_square` reproduces exactly the
Figure 4 computation; :func:`fit_log_distance` fits the physics-flavored
alternative ``RSSI = p₀ − 10·n·log₁₀(d)`` used by the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase
from repro.radio.pathloss import InverseSquareModel, dbm_to_ss_units

__all__ = [
    "FitResult",
    "LogDistanceFit",
    "PackedRanging",
    "fit_inverse_square",
    "fit_log_distance",
    "fit_per_ap",
]


@dataclass(frozen=True)
class FitResult:
    """One AP's fitted signal-strength model plus fit diagnostics."""

    model: InverseSquareModel
    r_squared: float
    rmse: float
    n_points: int

    def formula(self) -> str:
        """Human-readable Figure 4-style formula string."""
        a, b, c = self.model.coefficients
        return f"SS = {a:.2f}/d^2 + {b:.2f}/d + {c:.2f}"


def fit_inverse_square(
    distances_ft: np.ndarray,
    ss_units: np.ndarray,
    min_distance_ft: float = 1.0,
    max_distance_ft: float = 500.0,
) -> FitResult:
    """Least-squares fit of ``SS = a/d² + b/d + c``.

    NaN pairs are dropped; needs at least 3 finite points (3 unknowns).
    """
    d = np.asarray(distances_ft, dtype=float).ravel()
    ss = np.asarray(ss_units, dtype=float).ravel()
    if d.shape != ss.shape:
        raise ValueError(f"shape mismatch: distances {d.shape} vs ss {ss.shape}")
    keep = np.isfinite(d) & np.isfinite(ss) & (d > 0)
    d, ss = d[keep], ss[keep]
    if d.size < 3:
        raise ValueError(f"need >= 3 finite (distance, SS) pairs, got {d.size}")

    design = np.column_stack([d**-2, d**-1, np.ones_like(d)])
    coeffs, *_ = np.linalg.lstsq(design, ss, rcond=None)
    predicted = design @ coeffs
    resid = ss - predicted
    ss_tot = float(((ss - ss.mean()) ** 2).sum())
    r2 = 1.0 - float((resid**2).sum()) / ss_tot if ss_tot > 0 else 1.0
    model = InverseSquareModel(
        float(coeffs[0]),
        float(coeffs[1]),
        float(coeffs[2]),
        min_distance_ft=min_distance_ft,
        max_distance_ft=max_distance_ft,
    )
    return FitResult(
        model=model,
        r_squared=r2,
        rmse=float(np.sqrt((resid**2).mean())),
        n_points=int(d.size),
    )


@dataclass(frozen=True)
class LogDistanceFit:
    """Fitted ``RSSI = p0 − 10·n·log10(d)`` with diagnostics."""

    p0_dbm: float
    exponent: float
    r_squared: float
    rmse: float

    def rssi(self, distance_ft: np.ndarray) -> np.ndarray:
        d = np.maximum(np.asarray(distance_ft, dtype=float), 1e-6)
        return self.p0_dbm - 10.0 * self.exponent * np.log10(d)

    def invert(self, rssi_dbm: np.ndarray) -> np.ndarray:
        r = np.asarray(rssi_dbm, dtype=float)
        return 10.0 ** ((self.p0_dbm - r) / (10.0 * self.exponent))


def fit_log_distance(distances_ft: np.ndarray, rssi_dbm: np.ndarray) -> LogDistanceFit:
    """Least-squares fit of the log-distance model (dBm vs log10 d)."""
    d = np.asarray(distances_ft, dtype=float).ravel()
    r = np.asarray(rssi_dbm, dtype=float).ravel()
    keep = np.isfinite(d) & np.isfinite(r) & (d > 0)
    d, r = d[keep], r[keep]
    if d.size < 2:
        raise ValueError(f"need >= 2 finite (distance, RSSI) pairs, got {d.size}")
    design = np.column_stack([np.ones_like(d), -10.0 * np.log10(d)])
    coeffs, *_ = np.linalg.lstsq(design, r, rcond=None)
    resid = r - design @ coeffs
    ss_tot = float(((r - r.mean()) ** 2).sum())
    r2 = 1.0 - float((resid**2).sum()) / ss_tot if ss_tot > 0 else 1.0
    return LogDistanceFit(
        p0_dbm=float(coeffs[0]),
        exponent=float(coeffs[1]),
        r_squared=r2,
        rmse=float(np.sqrt((resid**2).mean())),
    )


@dataclass(frozen=True)
class PackedRanging:
    """Every fitted AP's inversion constants, packed into arrays.

    Built once at fit time from a ``fit_per_ap`` result, this moves the
    per-call work of ``InverseSquareModel.invert`` — branch endpoints,
    endpoint signal strengths, the 80-step bisection — into a single
    ``(M, n_fitted)`` vectorized pass.  Every elementwise operation
    mirrors ``_invert_scalar`` exactly (same expressions, same branch
    precedence), so the packed inversion is bit-for-bit identical to
    calling the scalar model per entry.
    """

    bssids: Tuple[str, ...]  # fitted APs, in training column order
    columns: np.ndarray  # (F,) training column index per fitted AP
    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    lo: np.ndarray  # monotone-branch endpoints
    hi: np.ndarray
    ss_lo: np.ndarray  # SS at the branch endpoints
    ss_hi: np.ndarray

    @classmethod
    def from_fits(
        cls, fits: Dict[str, FitResult], bssids: Sequence[str]
    ) -> "PackedRanging":
        ordered = [b for b in bssids if b in fits]
        lo_hi = [fits[b].model.monotone_branch() for b in ordered]
        models = [fits[b].model for b in ordered]
        return cls(
            bssids=tuple(ordered),
            columns=np.array([bssids.index(b) for b in ordered], dtype=int),
            a=np.array([m.a for m in models]),
            b=np.array([m.b for m in models]),
            c=np.array([m.c for m in models]),
            lo=np.array([lh[0] for lh in lo_hi]),
            hi=np.array([lh[1] for lh in lo_hi]),
            ss_lo=np.array([float(m.ss(lh[0])) for m, lh in zip(models, lo_hi)]),
            ss_hi=np.array([float(m.ss(lh[1])) for m, lh in zip(models, lo_hi)]),
        )

    def invert_matrix(self, ss: np.ndarray) -> np.ndarray:
        """``(M, F)`` signal strengths → ``(M, F)`` distances (ft)."""
        ss = np.asarray(ss, dtype=float)
        lo = np.broadcast_to(self.lo, ss.shape).copy()
        hi = np.broadcast_to(self.hi, ss.shape).copy()
        degenerate = self.ss_lo <= self.ss_hi  # (F,) broadcast over rows
        clamp_lo = ss >= self.ss_lo
        clamp_hi = ss <= self.ss_hi
        active = ~(degenerate | clamp_lo | clamp_hi)
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            d = np.maximum(mid, 1e-6)
            go_lo = (self.a / d**2 + self.b / d + self.c) > ss
            lo = np.where(active & go_lo, mid, lo)
            hi = np.where(active & ~go_lo, mid, hi)
        out = 0.5 * (lo + hi)
        # Same precedence as _invert_scalar: degenerate branch first,
        # then the hot-signal clamp, then the weak-signal clamp.
        out = np.where(clamp_lo, np.broadcast_to(self.lo, ss.shape), out)
        out = np.where(clamp_hi & ~clamp_lo, np.broadcast_to(self.hi, ss.shape), out)
        return np.where(degenerate, 0.5 * (self.lo + self.hi), out)

    def distances(self, obs_rows: np.ndarray) -> np.ndarray:
        """``(M, A)`` aligned mean dBm rows → ``(M, F)`` ranged distances.

        NaN marks (observation, AP) pairs that cannot be ranged (AP not
        heard).  Heard entries match the scalar path bit for bit:
        ``float(model.invert(float(dbm_to_ss_units(obs[j]))))``.
        """
        sub = obs_rows[:, self.columns]
        heard = np.isfinite(sub)
        # Park unheard entries at the dBm floor (0 SS after conversion)
        # so no NaN enters the bisection; they are masked back out below.
        ss = dbm_to_ss_units(np.where(heard, sub, -200.0))
        return np.where(heard, self.invert_matrix(ss), np.nan)


def fit_per_ap(
    db: TrainingDatabase,
    ap_positions: Dict[str, Point],
) -> Dict[str, FitResult]:
    """Phase-1 regression for every AP: the Figure 4 computation, per AP.

    ``ap_positions`` maps **BSSID → floor position** (from the Floor
    Plan Processor's AP layer).  For each AP the training points supply
    (distance to AP, mean SS there) pairs.
    """
    fits: Dict[str, FitResult] = {}
    means = db.mean_matrix()  # (L, A) dBm
    positions = db.positions()  # (L, 2)
    for j, bssid in enumerate(db.bssids):
        if bssid not in ap_positions:
            continue
        ap = ap_positions[bssid]
        d = np.hypot(positions[:, 0] - ap.x, positions[:, 1] - ap.y)
        ss = dbm_to_ss_units(means[:, j])
        ss = np.where(np.isfinite(means[:, j]), ss, np.nan)
        finite_d = d[np.isfinite(ss) & (d > 0)]
        if finite_d.size < 3:
            continue  # AP heard at <3 training points: unusable for ranging
        # Bound the inversion by the surveyed range (with headroom): the
        # fit is pure extrapolation outside it.
        min_d = max(1.0, 0.5 * float(finite_d.min()))
        max_d = 1.5 * float(finite_d.max())
        try:
            fits[bssid] = fit_inverse_square(
                d, ss, min_distance_ft=min_d, max_distance_ft=max_d
            )
        except ValueError:
            continue
    return fits
