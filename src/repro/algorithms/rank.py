"""Rank-based fingerprinting: device-invariant matching.

Motivated by the device-heterogeneity substrate
(:mod:`repro.radio.device`): any *monotone* per-device distortion of
the RSSI scale — offset, gain, mild compression — preserves the
**ordering** of the APs by strength.  Matching on the rank vector
therefore survives an uncalibrated query device where dB-space matchers
(Euclidean kNN, the §5.1 Gaussian) degrade.

Phase 1 ranks each training point's mean fingerprint; Phase 2 ranks the
observation and scores candidates by Spearman footrule / rho over the
commonly-heard APs, with a presence-mismatch penalty.  With four APs
the rank alphabet is small (24 orderings), so this is a coarse
localizer — its value, shown in the ABL-DEVICE bench, is *robustness*,
not precision, and it sharpens quickly as APs are added.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.trainingdb import TrainingDatabase


def _rank_vector(values: np.ndarray) -> np.ndarray:
    """Average-tie ranks of the finite entries; NaN where input is NaN."""
    out = np.full(values.shape, np.nan)
    finite = np.isfinite(values)
    vals = values[finite]
    if vals.size == 0:
        return out
    order = np.argsort(vals, kind="stable")
    ranks = np.empty(vals.size, dtype=float)
    ranks[order] = np.arange(1, vals.size + 1, dtype=float)
    # Average ties.
    for v in np.unique(vals):
        mask = vals == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    out[finite] = ranks
    return out


@register_algorithm("rank")
class RankLocalizer(Localizer):
    """Spearman-style rank matching over AP orderings.

    Parameters
    ----------
    mismatch_penalty:
        Squared-rank-units charge per AP heard on exactly one side.
    min_common_aps:
        Fewer shared APs than this → invalid estimate (ordering of one
        or two APs says almost nothing).
    """

    def __init__(self, mismatch_penalty: float = 2.0, min_common_aps: int = 3):
        if mismatch_penalty < 0:
            raise ValueError(f"mismatch penalty must be non-negative, got {mismatch_penalty}")
        if min_common_aps < 2:
            raise ValueError(f"min_common_aps must be >= 2, got {min_common_aps}")
        self.mismatch_penalty = float(mismatch_penalty)
        self.min_common_aps = int(min_common_aps)
        self._db: Optional[TrainingDatabase] = None
        self._means: Optional[np.ndarray] = None

    def fit(self, db: TrainingDatabase) -> "RankLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        self._means = db.mean_matrix()
        self._train_heard = np.isfinite(self._means)
        return self

    @staticmethod
    def _masked_ranks(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Average-tie ranks among each row's ``valid`` entries; NaN elsewhere.

        Row-vectorized counterpart of :func:`_rank_vector` applied to
        each row's compressed valid entries.  Rank sums are exact small
        dyadic floats, so the averaged ranks are bit-identical to the
        scalar routine no matter how rows are batched.
        """
        P, A = values.shape
        parked = np.where(valid, values, np.inf)  # invalid entries sort last
        order = np.argsort(parked, axis=1, kind="stable")
        sorted_vals = np.take_along_axis(parked, order, axis=1)
        new_run = np.ones((P, A), dtype=bool)
        new_run[:, 1:] = sorted_vals[:, 1:] != sorted_vals[:, :-1]
        run_id = np.cumsum(new_run, axis=1) - 1 + np.arange(P)[:, None] * A
        flat_run = run_id.ravel()
        positions = np.tile(np.arange(1, A + 1, dtype=float), P)
        rank_sum = np.bincount(flat_run, weights=positions, minlength=P * A)
        run_len = np.bincount(flat_run, minlength=P * A)
        avg = rank_sum / np.maximum(run_len, 1)
        ranks = np.empty((P, A))
        np.put_along_axis(ranks, order, avg[flat_run].reshape(P, A), axis=1)
        return np.where(valid, ranks, np.nan)

    def _rank_rows(self, obs_rows: np.ndarray) -> np.ndarray:
        """``(M, A)`` aligned mean rows → ``(M, L)`` rank distances.

        The one pair scorer both paths share: every ``(observation,
        training point)`` pair is ranked over its own commonly-heard AP
        set, exactly as the scalar loop did, but for all pairs at once.
        """
        means = self._means
        if obs_rows.shape[1] != means.shape[1]:
            raise ValueError(
                f"observation has {obs_rows.shape[1]} AP columns, "
                f"training had {means.shape[1]}"
            )
        M, A = obs_rows.shape
        L = means.shape[0]
        obs_heard = np.isfinite(obs_rows)
        both = obs_heard[:, None, :] & self._train_heard[None, :, :]  # (M, L, A)
        mismatch = (obs_heard[:, None, :] ^ self._train_heard[None, :, :]).sum(axis=2)
        pair_valid = both.reshape(M * L, A)
        r_obs = self._masked_ranks(
            np.broadcast_to(obs_rows[:, None, :], (M, L, A)).reshape(M * L, A),
            pair_valid,
        )
        r_train = self._masked_ranks(
            np.broadcast_to(means[None, :, :], (M, L, A)).reshape(M * L, A),
            pair_valid,
        )
        sq = np.where(pair_valid, (r_obs - r_train) ** 2, 0.0)
        n_common = pair_valid.sum(axis=1)
        # Rank sums/squares are exact dyadic floats, so the masked sum /
        # count equals the scalar path's compressed mean bit for bit.
        msd = sq.sum(axis=1) / np.maximum(n_common, 1)
        scored = msd.reshape(M, L) + self.mismatch_penalty * mismatch
        fallback = self.mismatch_penalty * (mismatch + 4)
        return np.where(n_common.reshape(M, L) < 2, fallback, scored)

    def rank_distances(self, observation: Observation) -> np.ndarray:
        """Per-training-point mean squared rank difference (lower = better).

        Ranks are recomputed per pair over the commonly heard APs, so a
        missing AP on either side changes the candidate's score through
        the mismatch penalty rather than corrupting the ranks.
        """
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        return self._rank_rows(observation.mean_rssi()[None, :])[0].copy()

    def rank_distance_matrix(self, observations) -> np.ndarray:
        """Batched :meth:`rank_distances`: ``(n_obs, n_locations)``."""
        self._check_fitted("_means")
        return self._rank_rows(self._mean_rows(observations, self._db.bssids))

    def _estimate_from_row(self, dist: np.ndarray, common: int) -> LocationEstimate:
        """One estimate from a rank-distance row (shared by both paths)."""
        # Ties are common (24 orderings of 4 APs): average the tied
        # training positions rather than picking arbitrarily.
        best = float(dist.min())
        tied = np.nonzero(dist <= best + 1e-12)[0]
        positions = self._db.positions()[tied]
        mean_xy = positions.mean(axis=0)
        from repro.core.geometry import Point

        return LocationEstimate(
            position=Point(float(mean_xy[0]), float(mean_xy[1])),
            location_name=self._db.records[int(tied[0])].name if tied.size == 1 else None,
            score=-best,
            valid=common >= self.min_common_aps,
            details={
                "rank_distance": best,
                "tied_locations": [self._db.records[int(i)].name for i in tied],
            },
        )

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_means")
        dist = self.rank_distances(observation)
        common = int(
            (np.isfinite(observation.mean_rssi())).sum()
            if not observation.bssids
            else np.isfinite(
                self._aligned(observation, self._db.bssids).mean_rssi()
            ).sum()
        )
        return self._estimate_from_row(dist, common)

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`)."""
        self._check_fitted("_means")
        obs_rows = self._mean_rows(observations, self._db.bssids)
        dist = self._rank_rows(obs_rows)  # (M, L)
        common = np.isfinite(obs_rows).sum(axis=1)
        return [
            self._estimate_from_row(dist[m], int(common[m]))
            for m in range(len(observations))
        ]
