"""Rank-based fingerprinting: device-invariant matching.

Motivated by the device-heterogeneity substrate
(:mod:`repro.radio.device`): any *monotone* per-device distortion of
the RSSI scale — offset, gain, mild compression — preserves the
**ordering** of the APs by strength.  Matching on the rank vector
therefore survives an uncalibrated query device where dB-space matchers
(Euclidean kNN, the §5.1 Gaussian) degrade.

Phase 1 ranks each training point's mean fingerprint; Phase 2 ranks the
observation and scores candidates by Spearman footrule / rho over the
commonly-heard APs, with a presence-mismatch penalty.  With four APs
the rank alphabet is small (24 orderings), so this is a coarse
localizer — its value, shown in the ABL-DEVICE bench, is *robustness*,
not precision, and it sharpens quickly as APs are added.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.trainingdb import TrainingDatabase


def _rank_vector(values: np.ndarray) -> np.ndarray:
    """Average-tie ranks of the finite entries; NaN where input is NaN."""
    out = np.full(values.shape, np.nan)
    finite = np.isfinite(values)
    vals = values[finite]
    if vals.size == 0:
        return out
    order = np.argsort(vals, kind="stable")
    ranks = np.empty(vals.size, dtype=float)
    ranks[order] = np.arange(1, vals.size + 1, dtype=float)
    # Average ties.
    for v in np.unique(vals):
        mask = vals == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    out[finite] = ranks
    return out


@register_algorithm("rank")
class RankLocalizer(Localizer):
    """Spearman-style rank matching over AP orderings.

    Parameters
    ----------
    mismatch_penalty:
        Squared-rank-units charge per AP heard on exactly one side.
    min_common_aps:
        Fewer shared APs than this → invalid estimate (ordering of one
        or two APs says almost nothing).
    """

    def __init__(self, mismatch_penalty: float = 2.0, min_common_aps: int = 3):
        if mismatch_penalty < 0:
            raise ValueError(f"mismatch penalty must be non-negative, got {mismatch_penalty}")
        if min_common_aps < 2:
            raise ValueError(f"min_common_aps must be >= 2, got {min_common_aps}")
        self.mismatch_penalty = float(mismatch_penalty)
        self.min_common_aps = int(min_common_aps)
        self._db: Optional[TrainingDatabase] = None
        self._means: Optional[np.ndarray] = None

    def fit(self, db: TrainingDatabase) -> "RankLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        self._means = db.mean_matrix()
        return self

    def rank_distances(self, observation: Observation) -> np.ndarray:
        """Per-training-point mean squared rank difference (lower = better).

        Ranks are recomputed per pair over the commonly heard APs, so a
        missing AP on either side changes the candidate's score through
        the mismatch penalty rather than corrupting the ranks.
        """
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        obs = observation.mean_rssi()
        if obs.shape[0] != self._means.shape[1]:
            raise ValueError(
                f"observation has {obs.shape[0]} AP columns, "
                f"training had {self._means.shape[1]}"
            )
        obs_heard = np.isfinite(obs)
        out = np.full(self._means.shape[0], np.inf)
        for i, train in enumerate(self._means):
            both = obs_heard & np.isfinite(train)
            mismatch = int((obs_heard ^ np.isfinite(train)).sum())
            if both.sum() < 2:
                out[i] = self.mismatch_penalty * (mismatch + 4)
                continue
            r_obs = _rank_vector(obs[both])
            r_train = _rank_vector(train[both])
            out[i] = float(((r_obs - r_train) ** 2).mean()) + self.mismatch_penalty * mismatch
        return out

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_means")
        dist = self.rank_distances(observation)
        # Ties are common (24 orderings of 4 APs): average the tied
        # training positions rather than picking arbitrarily.
        best = float(dist.min())
        tied = np.nonzero(dist <= best + 1e-12)[0]
        positions = self._db.positions()[tied]
        mean_xy = positions.mean(axis=0)
        from repro.core.geometry import Point

        common = int(
            (np.isfinite(observation.mean_rssi())).sum()
            if not observation.bssids
            else np.isfinite(
                self._aligned(observation, self._db.bssids).mean_rssi()
            ).sum()
        )
        return LocationEstimate(
            position=Point(float(mean_xy[0]), float(mean_xy[1])),
            location_name=self._db.records[int(tied[0])].name if tied.size == 1 else None,
            score=-best,
            valid=common >= self.min_common_aps,
            details={
                "rank_distance": best,
                "tied_locations": [self._db.records[int(i)].name for i in tied],
            },
        )
