"""The probabilistic approach (paper §5.1).

Phase 1 groups the training samples per training point and keeps, for
every ``<training point, AP>`` pair, the **average value and standard
deviation**.  Phase 2 scores an observation against every training
point with the paper's Gaussian likelihood

.. math::

    value = \\frac{e^{-\\frac{(observation - training)^2}{2\\sigma^2}}}
                 {\\sqrt{2\\pi\\sigma^2}}

multiplied across access points (sum of logs here, for numeric sanity),
and "the training point that generates the maximum likelihood value is
our estimate location.  Therefore, this approach does not return the
coordinate values of the observed location, but returns the most
approximate training location instead."

Implementation notes
--------------------
* The score loop is fully vectorized: one ``(n_locations, n_aps)``
  broadcast per observation.
* Missing data needs a policy the paper didn't have to spell out:
  an AP heard in the observation but never during training at some
  point (or vice versa) is evidence *against* that point.  We charge
  such mismatches a fixed log-penalty equivalent to a
  ``missing_penalty_sigma``-σ outlier, which keeps scores comparable
  across training points with different audible-AP sets.
* ``locate`` marks the estimate invalid when fewer than ``min_common_aps``
  APs are shared between observation and the best training point — with
  a single AP the likelihood field is a ring, not a point.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase

_LOG_2PI = math.log(2.0 * math.pi)


@register_algorithm("probabilistic")
class ProbabilisticLocalizer(Localizer):
    """Gaussian maximum-likelihood fingerprinting over training points.

    Parameters
    ----------
    min_std_db:
        Variance floor applied to the per-pair standard deviations
        (quantized RSSI can sit constant for a whole session).
    missing_penalty_sigma:
        A presence/absence mismatch between observation and training is
        charged like an outlier this many σ away.
    min_common_aps:
        Below this many shared APs the estimate is flagged invalid.
    """

    def __init__(
        self,
        min_std_db: float = 0.5,
        missing_penalty_sigma: float = 3.0,
        min_common_aps: int = 2,
    ):
        if min_std_db <= 0:
            raise ValueError(f"min_std_db must be positive, got {min_std_db}")
        if missing_penalty_sigma < 0:
            raise ValueError(
                f"missing_penalty_sigma must be non-negative, got {missing_penalty_sigma}"
            )
        if min_common_aps < 1:
            raise ValueError(f"min_common_aps must be >= 1, got {min_common_aps}")
        self.min_std_db = float(min_std_db)
        self.missing_penalty_sigma = float(missing_penalty_sigma)
        self.min_common_aps = int(min_common_aps)
        self._db: Optional[TrainingDatabase] = None
        self._means: Optional[np.ndarray] = None
        self._stds: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, db: TrainingDatabase) -> "ProbabilisticLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        self._means = db.mean_matrix()  # (L, A), NaN = AP unheard there
        self._stds = db.std_matrix(min_std=self.min_std_db)
        # Fit-time precomputation: everything Phase 2 needs that does
        # not depend on the observation.  The filled arrays are NaN-free
        # (values only ever read under the `both` mask), so the scoring
        # pass is pure broadcast arithmetic.
        train_heard = np.isfinite(self._means)
        self._train_heard = train_heard
        self._mean_filled = np.where(train_heard, self._means, 0.0)
        self._sd_filled = np.where(train_heard, self._stds, 1.0)
        self._log_sd = np.log(self._sd_filled)
        self._penalty = -0.5 * self.missing_penalty_sigma**2 - 0.5 * _LOG_2PI
        return self

    # ------------------------------------------------------------------
    def _ll_rows(self, obs_rows: np.ndarray) -> np.ndarray:
        """``(M, A)`` aligned mean rows → ``(M, L)`` log-likelihoods.

        The one scoring kernel both paths share: ``locate`` calls it
        with ``M = 1``, the batch kernel with a whole chunk.  Every
        operation is an elementwise ufunc or a fixed-length reduction
        along the AP axis, so each row's result is independent of how
        many rows ride along — the bit-for-bit parity the tests pin.
        """
        means = self._means
        if obs_rows.shape[1] != means.shape[1]:
            raise ValueError(
                f"observation has {obs_rows.shape[1]} AP columns, "
                f"training database has {means.shape[1]}"
            )
        obs_heard = np.isfinite(obs_rows)  # (M, A)
        both = obs_heard[:, None, :] & self._train_heard[None, :, :]  # (M, L, A)
        # Gaussian log-density where both sides heard the AP.
        z = np.where(both, obs_rows[:, None, :] - self._mean_filled[None, :, :], 0.0)
        loglik = np.where(
            both,
            -0.5 * (z / self._sd_filled[None, :, :]) ** 2
            - self._log_sd[None, :, :]
            - 0.5 * _LOG_2PI,
            0.0,
        )
        # Presence/absence mismatch: outlier-equivalent penalty.
        mismatch = obs_heard[:, None, :] ^ self._train_heard[None, :, :]
        loglik = loglik + np.where(mismatch, self._penalty, 0.0)
        return loglik.sum(axis=2)

    def log_likelihoods(self, observation: Observation) -> np.ndarray:
        """Per-training-point log likelihood of the observation's mean.

        Returns shape ``(n_locations,)``.  This is the quantity the §5.1
        argmax runs over; the Bayes-filter tracker reuses it as its
        emission model.
        """
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        return self._ll_rows(observation.mean_rssi()[None, :])[0].copy()

    def log_likelihood_matrix(self, observations) -> np.ndarray:
        """Batched :meth:`log_likelihoods`: ``(n_obs, n_locations)``.

        One broadcasted ``(M, L, A)`` evaluation instead of M separate
        ``(L, A)`` passes — the throughput path for bulk scoring
        (sweeps, offline evaluation, the PERF-BATCH bench).
        """
        self._check_fitted("_means")
        return self._ll_rows(self._mean_rows(observations, self._db.bssids))

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`)."""
        self._check_fitted("_means")
        obs_rows = self._mean_rows(observations, self._db.bssids)
        ll = self._ll_rows(obs_rows)  # (M, L)
        obs_heard = np.isfinite(obs_rows)
        best = ll.argmax(axis=1)
        order = np.argsort(ll, axis=1)
        common = (self._train_heard[best] & obs_heard).sum(axis=1)
        records = self._db.records
        has_runner_up = ll.shape[1] > 1
        out = []
        for m in range(len(observations)):
            record = records[int(best[m])]
            out.append(
                LocationEstimate(
                    position=record.position,
                    location_name=record.name,
                    score=float(ll[m, best[m]]),
                    valid=int(common[m]) >= self.min_common_aps,
                    details={
                        # A copy, not a row view: a view would pin the
                        # whole (M, L) matrix per estimate and let one
                        # caller's mutation corrupt its siblings.
                        "log_likelihoods": ll[m].copy(),
                        "common_aps": int(common[m]),
                        "runner_up": records[int(order[m, -2])].name
                        if has_runner_up
                        else None,
                    },
                )
            )
        return out

    def posterior(self, observation: Observation) -> np.ndarray:
        """Normalized probability over training points (softmax of logs)."""
        ll = self.log_likelihoods(observation)
        ll = ll - ll.max()
        p = np.exp(ll)
        return p / p.sum()

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        ll = self.log_likelihoods(observation)
        best = int(np.argmax(ll))
        record = self._db.records[best]

        obs_heard = np.isfinite(observation.mean_rssi())
        common = int((np.isfinite(self._means[best]) & obs_heard).sum())
        valid = common >= self.min_common_aps
        return LocationEstimate(
            position=record.position,
            location_name=record.name,
            score=float(ll[best]),
            valid=valid,
            details={
                "log_likelihoods": ll,
                "common_aps": common,
                "runner_up": self._db.records[int(np.argsort(ll)[-2])].name
                if len(ll) > 1
                else None,
            },
        )
