"""The probabilistic approach (paper §5.1).

Phase 1 groups the training samples per training point and keeps, for
every ``<training point, AP>`` pair, the **average value and standard
deviation**.  Phase 2 scores an observation against every training
point with the paper's Gaussian likelihood

.. math::

    value = \\frac{e^{-\\frac{(observation - training)^2}{2\\sigma^2}}}
                 {\\sqrt{2\\pi\\sigma^2}}

multiplied across access points (sum of logs here, for numeric sanity),
and "the training point that generates the maximum likelihood value is
our estimate location.  Therefore, this approach does not return the
coordinate values of the observed location, but returns the most
approximate training location instead."

Implementation notes
--------------------
* The score loop is fully vectorized: one ``(n_locations, n_aps)``
  broadcast per observation.
* Missing data needs a policy the paper didn't have to spell out:
  an AP heard in the observation but never during training at some
  point (or vice versa) is evidence *against* that point.  We charge
  such mismatches a fixed log-penalty equivalent to a
  ``missing_penalty_sigma``-σ outlier, which keeps scores comparable
  across training points with different audible-AP sets.
* ``locate`` marks the estimate invalid when fewer than ``min_common_aps``
  APs are shared between observation and the best training point — with
  a single AP the likelihood field is a ring, not a point.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase

_LOG_2PI = math.log(2.0 * math.pi)


@register_algorithm("probabilistic")
class ProbabilisticLocalizer(Localizer):
    """Gaussian maximum-likelihood fingerprinting over training points.

    Parameters
    ----------
    min_std_db:
        Variance floor applied to the per-pair standard deviations
        (quantized RSSI can sit constant for a whole session).
    missing_penalty_sigma:
        A presence/absence mismatch between observation and training is
        charged like an outlier this many σ away.
    min_common_aps:
        Below this many shared APs the estimate is flagged invalid.
    """

    def __init__(
        self,
        min_std_db: float = 0.5,
        missing_penalty_sigma: float = 3.0,
        min_common_aps: int = 2,
    ):
        if min_std_db <= 0:
            raise ValueError(f"min_std_db must be positive, got {min_std_db}")
        if missing_penalty_sigma < 0:
            raise ValueError(
                f"missing_penalty_sigma must be non-negative, got {missing_penalty_sigma}"
            )
        if min_common_aps < 1:
            raise ValueError(f"min_common_aps must be >= 1, got {min_common_aps}")
        self.min_std_db = float(min_std_db)
        self.missing_penalty_sigma = float(missing_penalty_sigma)
        self.min_common_aps = int(min_common_aps)
        self._db: Optional[TrainingDatabase] = None
        self._means: Optional[np.ndarray] = None
        self._stds: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, db: TrainingDatabase) -> "ProbabilisticLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        self._means = db.mean_matrix()  # (L, A), NaN = AP unheard there
        self._stds = db.std_matrix(min_std=self.min_std_db)
        return self

    # ------------------------------------------------------------------
    def log_likelihoods(self, observation: Observation) -> np.ndarray:
        """Per-training-point log likelihood of the observation's mean.

        Returns shape ``(n_locations,)``.  This is the quantity the §5.1
        argmax runs over; the Bayes-filter tracker reuses it as its
        emission model.
        """
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        means, stds = self._means, self._stds
        obs = observation.mean_rssi()
        if obs.shape[0] != means.shape[1]:
            raise ValueError(
                f"observation has {obs.shape[0]} AP columns, "
                f"training database has {means.shape[1]}"
            )
        obs_heard = np.isfinite(obs)  # (A,)
        train_heard = np.isfinite(means)  # (L, A)

        both = train_heard & obs_heard[None, :]
        # Gaussian log-density where both sides heard the AP.
        z = np.where(both, (obs[None, :] - np.where(both, means, 0.0)), 0.0)
        sd = np.where(both, stds, 1.0)
        loglik = np.where(both, -0.5 * (z / sd) ** 2 - np.log(sd) - 0.5 * _LOG_2PI, 0.0)

        # Presence/absence mismatch: outlier-equivalent penalty.
        mismatch = train_heard ^ obs_heard[None, :]
        penalty = -0.5 * self.missing_penalty_sigma**2 - 0.5 * _LOG_2PI
        loglik = loglik + np.where(mismatch, penalty, 0.0)
        return loglik.sum(axis=1)

    def log_likelihood_matrix(self, observations) -> np.ndarray:
        """Batched :meth:`log_likelihoods`: ``(n_obs, n_locations)``.

        One broadcasted ``(M, L, A)`` evaluation instead of M separate
        ``(L, A)`` passes — the throughput path for bulk scoring
        (sweeps, offline evaluation, the PERF-BATCH bench).
        """
        self._check_fitted("_means")
        means, stds = self._means, self._stds
        obs_rows = np.vstack(
            [self._aligned(o, self._db.bssids).mean_rssi() for o in observations]
        )  # (M, A)
        obs_heard = np.isfinite(obs_rows)  # (M, A)
        train_heard = np.isfinite(means)  # (L, A)

        both = obs_heard[:, None, :] & train_heard[None, :, :]  # (M, L, A)
        # Mask with `both` exactly as log_likelihoods does — masking sd
        # by train_heard alone feeds NaN stds (single-sweep sessions)
        # into the dead branch of the where and diverges from the
        # single-observation path.
        z = np.where(both, obs_rows[:, None, :] - np.where(both, means[None, :, :], 0.0), 0.0)
        sd = np.where(both, stds[None, :, :], 1.0)
        loglik = np.where(both, -0.5 * (z / sd) ** 2 - np.log(sd) - 0.5 * _LOG_2PI, 0.0)
        mismatch = obs_heard[:, None, :] ^ train_heard[None, :, :]
        penalty = -0.5 * self.missing_penalty_sigma**2 - 0.5 * _LOG_2PI
        loglik = loglik + np.where(mismatch, penalty, 0.0)
        return loglik.sum(axis=2)

    def locate_many(self, observations):
        """Vectorized batch :meth:`locate` (identical answers, one pass)."""
        observations = list(observations)
        if not observations:
            return []
        ll = self.log_likelihood_matrix(observations)  # (M, L)
        best = ll.argmax(axis=1)
        order = np.argsort(ll, axis=1)
        out = []
        for m, obs in enumerate(observations):
            record = self._db.records[int(best[m])]
            aligned = self._aligned(obs, self._db.bssids)
            obs_heard = np.isfinite(aligned.mean_rssi())
            common = int((np.isfinite(self._means[int(best[m])]) & obs_heard).sum())
            out.append(
                LocationEstimate(
                    position=record.position,
                    location_name=record.name,
                    score=float(ll[m, best[m]]),
                    valid=common >= self.min_common_aps,
                    details={
                        # A copy, not a row view: a view would pin the
                        # whole (M, L) matrix per estimate and let one
                        # caller's mutation corrupt its siblings.
                        "log_likelihoods": ll[m].copy(),
                        "common_aps": common,
                        "runner_up": self._db.records[int(order[m, -2])].name
                        if ll.shape[1] > 1
                        else None,
                    },
                )
            )
        return out

    def posterior(self, observation: Observation) -> np.ndarray:
        """Normalized probability over training points (softmax of logs)."""
        ll = self.log_likelihoods(observation)
        ll = ll - ll.max()
        p = np.exp(ll)
        return p / p.sum()

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        ll = self.log_likelihoods(observation)
        best = int(np.argmax(ll))
        record = self._db.records[best]

        obs_heard = np.isfinite(observation.mean_rssi())
        common = int((np.isfinite(self._means[best]) & obs_heard).sum())
        valid = common >= self.min_common_aps
        return LocationEstimate(
            position=record.position,
            location_name=record.name,
            score=float(ll[best]),
            valid=valid,
            details={
                "log_likelihoods": ll,
                "common_aps": common,
                "runner_up": self._db.records[int(np.argsort(ll)[-2])].name
                if len(ll) > 1
                else None,
            },
        )
