"""Scene-analysis localization (paper §2.1), transposed to RF.

The scene-analysis family "operates much the same way humans localize
themselves": compare the *currently observed scene* against "a database
of landmarks of known size, shape, and location" built by "a separate
robot performing an exploratory tour".  The essence is **signature
matching against a surveyed database** — invariant to global gain, which
for a camera means lighting and for a NIC means per-device RSSI offset
(a real deployment headache: two cards report the same channel shifted
by several dB).

This localizer is that transposition: the "scene" is the RSSI vector,
the "landmark database" is the training survey, and matching uses the
**Pearson correlation** of the signal vectors — so a constant additive
(dB) or multiplicative bias on the observing device cancels, unlike the
Euclidean matchers.  Appropriately for the family, it is a *symbolic*
localizer: the answer is a named training location, never interpolated
coordinates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.trainingdb import TrainingDatabase


@register_algorithm("scene")
class SceneAnalysisLocalizer(Localizer):
    """Gain-invariant signature matching (Pearson correlation).

    Parameters
    ----------
    min_common_aps:
        Correlation over fewer than this many shared APs is meaningless;
        such training points are skipped (and the estimate invalid if no
        point qualifies).
    """

    def __init__(self, min_common_aps: int = 3):
        if min_common_aps < 2:
            raise ValueError(f"min_common_aps must be >= 2, got {min_common_aps}")
        self.min_common_aps = int(min_common_aps)
        self._db: Optional[TrainingDatabase] = None
        self._means: Optional[np.ndarray] = None

    def fit(self, db: TrainingDatabase) -> "SceneAnalysisLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        self._means = db.mean_matrix()
        return self

    def correlations(self, observation: Observation) -> np.ndarray:
        """Pearson r against each training signature (NaN = unusable)."""
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        means = self._means
        obs = observation.mean_rssi()
        if obs.shape[0] != means.shape[1]:
            raise ValueError(
                f"observation has {obs.shape[0]} AP columns, "
                f"training had {means.shape[1]}"
            )
        out = np.full(means.shape[0], np.nan)
        obs_heard = np.isfinite(obs)
        for i in range(means.shape[0]):
            both = obs_heard & np.isfinite(means[i])
            if both.sum() < self.min_common_aps:
                continue
            a = obs[both]
            b = means[i][both]
            sa, sb = a.std(), b.std()
            if sa < 1e-9 or sb < 1e-9:
                continue
            out[i] = float(np.corrcoef(a, b)[0, 1])
        return out

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_means")
        corr = self.correlations(observation)
        if not np.isfinite(corr).any():
            return LocationEstimate(
                position=None,
                valid=False,
                details={"reason": "no training signature shares enough APs"},
            )
        best = int(np.nanargmax(corr))
        record = self._db.records[best]
        return LocationEstimate(
            position=record.position,
            location_name=record.name,
            score=float(corr[best]),
            valid=True,
            details={"correlations": corr},
        )
