"""Scene-analysis localization (paper §2.1), transposed to RF.

The scene-analysis family "operates much the same way humans localize
themselves": compare the *currently observed scene* against "a database
of landmarks of known size, shape, and location" built by "a separate
robot performing an exploratory tour".  The essence is **signature
matching against a surveyed database** — invariant to global gain, which
for a camera means lighting and for a NIC means per-device RSSI offset
(a real deployment headache: two cards report the same channel shifted
by several dB).

This localizer is that transposition: the "scene" is the RSSI vector,
the "landmark database" is the training survey, and matching uses the
**Pearson correlation** of the signal vectors — so a constant additive
(dB) or multiplicative bias on the observing device cancels, unlike the
Euclidean matchers.  Appropriately for the family, it is a *symbolic*
localizer: the answer is a named training location, never interpolated
coordinates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.trainingdb import TrainingDatabase


@register_algorithm("scene")
class SceneAnalysisLocalizer(Localizer):
    """Gain-invariant signature matching (Pearson correlation).

    Parameters
    ----------
    min_common_aps:
        Correlation over fewer than this many shared APs is meaningless;
        such training points are skipped (and the estimate invalid if no
        point qualifies).
    """

    def __init__(self, min_common_aps: int = 3):
        if min_common_aps < 2:
            raise ValueError(f"min_common_aps must be >= 2, got {min_common_aps}")
        self.min_common_aps = int(min_common_aps)
        self._db: Optional[TrainingDatabase] = None
        self._means: Optional[np.ndarray] = None

    def fit(self, db: TrainingDatabase) -> "SceneAnalysisLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        self._means = db.mean_matrix()
        self._train_heard = np.isfinite(self._means)
        return self

    def _corr_rows(self, obs_rows: np.ndarray) -> np.ndarray:
        """``(M, A)`` aligned mean rows → ``(M, L)`` Pearson r (NaN = unusable).

        Masked-Pearson over each pair's commonly-heard AP set, all pairs
        at once.  Deliberately avoids ``np.corrcoef`` (whose matmul core
        is shape-dependent): the same masked formulation serves single
        and batch paths, so they agree bit for bit.
        """
        means = self._means
        if obs_rows.shape[1] != means.shape[1]:
            raise ValueError(
                f"observation has {obs_rows.shape[1]} AP columns, "
                f"training had {means.shape[1]}"
            )
        obs_heard = np.isfinite(obs_rows)
        both = obs_heard[:, None, :] & self._train_heard[None, :, :]  # (M, L, A)
        n = both.sum(axis=2)  # (M, L)
        nf = np.maximum(n, 1)
        a = np.where(both, obs_rows[:, None, :], 0.0)
        b = np.where(both, means[None, :, :], 0.0)
        ca = np.where(both, a - (a.sum(axis=2) / nf)[:, :, None], 0.0)
        cb = np.where(both, b - (b.sum(axis=2) / nf)[:, :, None], 0.0)
        va = (ca**2).sum(axis=2)
        vb = (cb**2).sum(axis=2)
        # Degenerate signatures (zero variance over the shared APs) are
        # unusable, exactly like the scalar path's std() gate.
        usable = (
            (n >= self.min_common_aps)
            & (np.sqrt(va / nf) >= 1e-9)
            & (np.sqrt(vb / nf) >= 1e-9)
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            r = np.clip((ca * cb).sum(axis=2) / np.sqrt(va * vb), -1.0, 1.0)
        return np.where(usable, r, np.nan)

    def correlations(self, observation: Observation) -> np.ndarray:
        """Pearson r against each training signature (NaN = unusable)."""
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        return self._corr_rows(observation.mean_rssi()[None, :])[0].copy()

    def correlation_matrix(self, observations) -> np.ndarray:
        """Batched :meth:`correlations`: ``(n_obs, n_locations)``."""
        self._check_fitted("_means")
        return self._corr_rows(self._mean_rows(observations, self._db.bssids))

    def _estimate_from_row(self, corr: np.ndarray) -> LocationEstimate:
        if not np.isfinite(corr).any():
            return LocationEstimate(
                position=None,
                valid=False,
                details={"reason": "no training signature shares enough APs"},
            )
        best = int(np.nanargmax(corr))
        record = self._db.records[best]
        return LocationEstimate(
            position=record.position,
            location_name=record.name,
            score=float(corr[best]),
            valid=True,
            details={"correlations": corr},
        )

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_means")
        return self._estimate_from_row(self.correlations(observation))

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`)."""
        self._check_fitted("_means")
        corr = self._corr_rows(self._mean_rows(observations, self._db.bssids))
        finite = np.isfinite(corr)
        usable = finite.any(axis=1)
        # nanargmax, all rows at once: NaN parked at -inf picks the same
        # first-maximum index the per-row np.nanargmax would.
        best = np.argmax(np.where(finite, corr, -np.inf), axis=1)
        out = []
        for m in range(corr.shape[0]):
            if not usable[m]:
                out.append(
                    LocationEstimate(
                        position=None,
                        valid=False,
                        details={"reason": "no training signature shares enough APs"},
                    )
                )
                continue
            record = self._db.records[int(best[m])]
            out.append(
                LocationEstimate(
                    position=record.position,
                    location_name=record.name,
                    score=float(corr[m, best[m]]),
                    valid=True,
                    # Row copies, not views: an estimate must not pin (or
                    # expose mutation of) the whole (M, L) matrix.
                    details={"correlations": corr[m].copy()},
                )
            )
        return out
