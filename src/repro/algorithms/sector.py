"""The sector approach: identifying codes (paper §2.2, ref [22]).

"Stationary units are placed in the location space, each with a unique
identification tag … The set of visible broadcast tags forms an
identifying code, which determines the location from a table of
vertex-code pairings."

Phase 1 derives each training location's *code* — the set of APs that
are reliably audible there (detection rate ≥ ``presence_threshold``) —
and builds the vertex-code table.  Phase 2 computes the observation's
code and looks it up; unseen codes fall back to the nearest code by
symmetric-difference (Hamming) distance, breaking ties by averaging the
tied locations.

The module also ships the design-side tooling the identifying-codes
literature is actually about: :func:`is_identifying` checks a code
table's uniqueness, and :func:`minimal_identifying_subset` greedily
prunes transmitters while keeping all locations distinguishable — the
planning question an installer of this approach faces.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.geometry import Point, centroid
from repro.core.trainingdb import TrainingDatabase

Code = FrozenSet[str]


def is_identifying(codes: Dict[str, Code]) -> bool:
    """True iff every location has a distinct, non-empty code."""
    seen = set()
    for code in codes.values():
        if not code or code in seen:
            return False
        seen.add(code)
    return True


def minimal_identifying_subset(codes: Dict[str, Code]) -> List[str]:
    """Greedy minimum transmitter set that keeps all codes distinct.

    Classic greedy set-cover on the "pairs of locations still confused"
    universe: repeatedly keep the transmitter that separates the most
    currently-confused pairs.  Raises ``ValueError`` if even the full
    transmitter set is not identifying.
    """
    if not is_identifying(codes):
        raise ValueError("full transmitter set is not identifying; cannot reduce")
    names = sorted(codes)
    transmitters = sorted(set().union(*codes.values()))
    confused = set(combinations(range(len(names)), 2))
    chosen: List[str] = []
    remaining = list(transmitters)
    while confused:
        best_t, best_sep = None, -1
        for t in remaining:
            sep = sum(
                1
                for i, j in confused
                if (t in codes[names[i]]) != (t in codes[names[j]])
            )
            if sep > best_sep:
                best_t, best_sep = t, sep
        if best_sep <= 0:
            # Remaining confusion is only resolvable by emptiness rules;
            # keep every transmitter that appears in some confused pair.
            break
        chosen.append(best_t)
        remaining.remove(best_t)
        confused = {
            (i, j)
            for i, j in confused
            if (best_t in codes[names[i]]) == (best_t in codes[names[j]])
        }
    # Ensure non-empty codes for every location.
    for name in names:
        if not (codes[name] & set(chosen)):
            extra = sorted(codes[name])[0]
            if extra not in chosen:
                chosen.append(extra)
    return sorted(chosen)


@register_algorithm("sector")
class SectorLocalizer(Localizer):
    """Identifying-code lookup over presence/absence patterns.

    Parameters
    ----------
    presence_threshold:
        Detection-rate cutoff for an AP to count as "visible" at a
        location (both phases).
    """

    def __init__(self, presence_threshold: float = 0.5):
        if not 0.0 < presence_threshold <= 1.0:
            raise ValueError(
                f"presence_threshold must be in (0, 1], got {presence_threshold}"
            )
        self.presence_threshold = float(presence_threshold)
        self._db: Optional[TrainingDatabase] = None
        self._table: Optional[Dict[Code, List[int]]] = None
        self._codes: Optional[Dict[str, Code]] = None

    def fit(self, db: TrainingDatabase) -> "SectorLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        self._codes = {}
        self._table = {}
        for i, rec in enumerate(db.records):
            rate = rec.detection_rate()
            code: Code = frozenset(
                b for b, r in zip(db.bssids, rate) if r >= self.presence_threshold
            )
            self._codes[rec.name] = code
            self._table.setdefault(code, []).append(i)
        # Fit-time precomputation for the batch kernel: the table as a
        # bool matrix (rows in table insertion order, so nearest-code
        # tie collection walks codes exactly like the dict loop), an
        # exact-match index keyed by the packed bits, and the per-entry
        # answer pieces (centroid, names) that exact hits reuse.
        self._code_order: List[Code] = list(self._table)
        self._code_matrix = np.array(
            [[b in code for b in db.bssids] for code in self._code_order],
            dtype=bool,
        )
        self._exact_index = {
            self._code_matrix[i].tobytes(): i for i in range(len(self._code_order))
        }
        self._entry_cache = []
        for code in self._code_order:
            records = [db.records[i] for i in self._table[code]]
            self._entry_cache.append(
                (
                    centroid([r.position for r in records]),
                    records[0].name if len(records) == 1 else None,
                    [r.name for r in records],
                    sorted(code),
                )
            )
        return self

    @property
    def codes(self) -> Dict[str, Code]:
        """Per-location identifying codes (after :meth:`fit`)."""
        self._check_fitted("_codes")
        return dict(self._codes)

    def identifying(self) -> bool:
        """Is the deployed AP set an identifying code for the locations?"""
        self._check_fitted("_codes")
        return is_identifying(self._codes)

    def observation_code(self, observation: Observation) -> Code:
        observation = self._aligned(observation, self._db.bssids)
        rate = observation.detection_rate()
        return frozenset(
            b for b, r in zip(self._db.bssids, rate) if r >= self.presence_threshold
        )

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_table")
        code = self.observation_code(observation)
        exact = self._table.get(code)
        if exact is not None:
            indices, hamming = exact, 0
        else:
            # Nearest code by symmetric difference.
            best_d = None
            indices = []
            for tcode, idxs in self._table.items():
                d = len(tcode ^ code)
                if best_d is None or d < best_d:
                    best_d, indices = d, list(idxs)
                elif d == best_d:
                    indices.extend(idxs)
            hamming = best_d or 0
        records = [self._db.records[i] for i in indices]
        position = centroid([r.position for r in records])
        return LocationEstimate(
            position=position,
            location_name=records[0].name if len(records) == 1 else None,
            score=-float(hamming),
            valid=bool(code),
            details={
                "code": sorted(code),
                "hamming_distance": hamming,
                "matched_locations": [r.name for r in records],
            },
        )

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`)."""
        self._check_fitted("_table")
        bssids = self._db.bssids
        aligned = [self._aligned(o, bssids) for o in observations]
        # Same-sweep-count batches (the common bulk shape) compute all
        # detection rates in one stacked pass; boolean sums are exact,
        # so the rates equal per-observation detection_rate() bit for bit.
        if (
            len(aligned) > 1
            and len({a.samples.shape[0] for a in aligned}) == 1
            and aligned[0].samples.shape[0] > 0
        ):
            rates = np.isfinite(np.stack([a.samples for a in aligned])).mean(axis=1)
        else:
            rates = np.vstack([a.detection_rate() for a in aligned])
        code_bits = rates >= self.presence_threshold  # (M, A)
        out = []
        for m in range(len(observations)):
            bits = code_bits[m]
            entry = self._exact_index.get(bits.tobytes())
            if entry is not None:
                position, name, matched, code_sorted = self._entry_cache[entry]
                hamming = 0
            else:
                # Nearest code by symmetric difference; ties collect in
                # table order, exactly like the dict loop in locate.
                d = (bits[None, :] ^ self._code_matrix).sum(axis=1)
                hamming = int(d.min())
                tied = np.nonzero(d == hamming)[0]
                indices = [i for c in tied for i in self._table[self._code_order[c]]]
                records = [self._db.records[i] for i in indices]
                position = centroid([r.position for r in records])
                name = records[0].name if len(records) == 1 else None
                matched = [r.name for r in records]
                code_sorted = sorted(b for b, v in zip(bssids, bits) if v)
            out.append(
                LocationEstimate(
                    position=position,
                    location_name=name,
                    score=-float(hamming),
                    valid=bool(bits.any()),
                    details={
                        # Fresh containers per estimate: cached lists must
                        # not be shared across (or mutable through) answers.
                        "code": list(code_sorted),
                        "hamming_distance": hamming,
                        "matched_locations": list(matched),
                    },
                )
            )
        return out
