"""The geometric approach (paper §5.2).

Phase 1: fit each AP's inverse-square SS↔distance formula from the
training points (:mod:`repro.algorithms.regression`).  Phase 2, exactly
as the paper walks through it for APs A, B, C, D:

    "the observed signal strength vector <AO, BO, CO, DO> is used to
    calculate the distances to the four APs <dA, dB, dC, dD>.  As
    locations for APs A and B are known, we calculate the intersect
    points P1 of circle (A, dA) and circle (B, dB).  Similarly we can
    get three more intersect points P2 out of dB and dC, P3 out of dC
    and dD, P4 out of dD and dA.  Finally we can get the median point P
    of P1, P2, P3 and P4.  This median point P is the estimated
    location."

Two details the paper leaves implicit, resolved here explicitly:

* a circle pair generically yields **two** intersection points; we keep
  the candidate most consistent with the *other* APs' distance circles
  (smallest sum of absolute radial residuals), a disambiguation any
  working implementation needs;
* noisy distance estimates often produce non-intersecting circles; we
  use :func:`~repro.core.geometry.best_circle_intersection`'s
  least-squares fallback point so the pipeline never dies mid-estimate.

The pairing is the paper's ring ``(1,2), (2,3), …, (n,1)`` over the APs
ordered as configured, generalized to any ``n ≥ 3``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    invalid_estimate,
    register_algorithm,
)
from repro.algorithms.regression import FitResult, PackedRanging, fit_per_ap
from repro.core.geometry import (
    Circle,
    Point,
    best_circle_intersection,
    geometric_median,
    median_point,
)
from repro.core.trainingdb import TrainingDatabase


@register_algorithm("geometric")
class GeometricLocalizer(Localizer):
    """Inverse-square ranging + ring circle-intersection + median point.

    Parameters
    ----------
    ap_positions:
        BSSID → floor position of each AP (the Floor Plan Processor's
        AP layer provides this).  APs absent from the mapping are
        ignored.
    aggregator:
        ``"median"`` (the paper's componentwise median point, default),
        ``"geometric_median"`` (Weiszfeld; ablation) or ``"centroid"``.
    min_aps:
        Minimum ranged APs for a valid estimate (3 circles define a
        point; the paper's protocol uses 4).
    """

    _AGGREGATORS = {
        "median": median_point,
        "geometric_median": geometric_median,
        "centroid": lambda pts: sum(pts[1:], pts[0]) / len(pts),
    }

    def __init__(
        self,
        ap_positions: Dict[str, Point],
        aggregator: str = "median",
        min_aps: int = 3,
    ):
        if not ap_positions:
            raise ValueError("geometric localizer needs AP positions")
        if aggregator not in self._AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {aggregator!r}; use one of {sorted(self._AGGREGATORS)}"
            )
        if min_aps < 3:
            raise ValueError(f"min_aps must be >= 3 (circle intersection), got {min_aps}")
        self.ap_positions = dict(ap_positions)
        self.aggregator = aggregator
        self.min_aps = int(min_aps)
        self._fits: Optional[Dict[str, FitResult]] = None
        self._bssids: Optional[List[str]] = None
        self._packed: Optional[PackedRanging] = None

    # ------------------------------------------------------------------
    def fit(self, db: TrainingDatabase) -> "GeometricLocalizer":
        self._bssids = list(db.bssids)
        self._fits = fit_per_ap(db, self.ap_positions)
        if len(self._fits) < self.min_aps:
            raise ValueError(
                f"only {len(self._fits)} AP(s) produced a usable SS↔distance fit; "
                f"need >= {self.min_aps}"
            )
        # Fit-time precomputation: branch endpoints and coefficients of
        # every fitted AP packed for the vectorized RSSI→distance pass.
        # A pack-loaded database frozen with the same AP map already
        # carries these arrays (mmap-shared, byte-identical by
        # construction); adopt them instead of rebuilding on the heap.
        from repro.core.frozenpack import frozen_ranging_for

        frozen = frozen_ranging_for(db, self.ap_positions)
        self._packed = (
            frozen if frozen is not None
            else PackedRanging.from_fits(self._fits, self._bssids)
        )
        return self

    @property
    def fits(self) -> Dict[str, FitResult]:
        """Per-AP Figure 4 fits (available after :meth:`fit`)."""
        self._check_fitted("_fits")
        return dict(self._fits)

    # ------------------------------------------------------------------
    def estimate_distances(self, observation: Observation) -> Dict[str, float]:
        """Phase-2 step 1: observed SS vector → per-AP distances (ft)."""
        self._check_fitted("_fits")
        observation = self._aligned(observation, self._bssids)
        obs = observation.mean_rssi()
        if obs.shape[0] != len(self._bssids):
            raise ValueError(
                f"observation has {obs.shape[0]} AP columns, "
                f"training had {len(self._bssids)}"
            )
        return self._distances_from_row(self._packed.distances(obs[None, :])[0])

    def _distances_from_row(self, row: np.ndarray) -> Dict[str, float]:
        """One packed-ranging row → BSSID→distance dict (training order)."""
        return {
            b: float(row[f])
            for f, b in enumerate(self._packed.bssids)
            if np.isfinite(row[f])
        }

    def estimate_distance_matrix(self, observations) -> np.ndarray:
        """Batched ranging: ``(n_obs, n_fitted_aps)`` distances (ft).

        Columns follow ``self._packed.bssids``; NaN marks unheard APs.
        """
        self._check_fitted("_fits")
        obs_rows = self._mean_rows(observations, self._bssids)
        if obs_rows.shape[1] != len(self._bssids):
            raise ValueError(
                f"observation has {obs_rows.shape[1]} AP columns, "
                f"training had {len(self._bssids)}"
            )
        return self._packed.distances(obs_rows)

    def _pick_candidate(
        self, candidates: Sequence[Point], others: Sequence[Circle]
    ) -> Point:
        """Disambiguate a circle pair's two intersections.

        The paper's house has the APs at the corners, so the wrong
        intersection lies outside the building and far from the other
        circles; scoring by total radial residual against the remaining
        circles picks the right one without needing explicit bounds.
        """
        if len(candidates) == 1 or not others:
            return candidates[0]
        best, best_score = candidates[0], float("inf")
        for cand in candidates:
            score = sum(abs(c.center.distance_to(cand) - c.radius) for c in others)
            if score < best_score:
                best, best_score = cand, score
        return best

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_fits")
        return self._locate_from_distances(self.estimate_distances(observation))

    def _locate_from_distances(self, distances: Dict[str, float]) -> LocationEstimate:
        """Phase-2 steps 2-4 from the ranged distances (shared by both paths)."""
        if len(distances) < self.min_aps:
            return invalid_estimate(
                f"only {len(distances)} ranged AP(s)", distances=distances
            )

        # Ring order: configured AP order restricted to the ranged set.
        order = [b for b in self._bssids if b in distances]
        circles = [Circle(self.ap_positions[b], distances[b]) for b in order]

        intersections: List[Point] = []
        n = len(circles)
        for i in range(n):
            c1, c2 = circles[i], circles[(i + 1) % n]
            others = [circles[k] for k in range(n) if k != i and k != (i + 1) % n]
            candidates = best_circle_intersection(c1, c2)
            if not candidates:
                continue  # concentric centers: no usable point
            intersections.append(self._pick_candidate(candidates, others))

        if len(intersections) < 2:
            return invalid_estimate(
                "fewer than 2 circle-pair intersections", distances=distances
            )
        position = self._AGGREGATORS[self.aggregator](intersections)
        residual = float(
            np.mean([abs(c.center.distance_to(position) - c.radius) for c in circles])
        )
        return LocationEstimate(
            position=position,
            location_name=None,
            score=-residual,
            valid=True,
            details={
                "distances": distances,
                "intersections": intersections,
                "mean_radial_residual_ft": residual,
            },
        )

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`).

        The expensive part — per-AP bisection inversion — runs as one
        packed ``(M, F)`` pass; the cheap circle-intersection geometry
        then consumes per-row distance dicts identical to the scalar
        path's, so every downstream float matches bit for bit.
        """
        self._check_fitted("_fits")
        rows = self.estimate_distance_matrix(observations)
        return [self._locate_from_distances(self._distances_from_row(row)) for row in rows]
