"""RADAR-style (k-)nearest-neighbour fingerprinting (baseline, ref [15]).

Bahl & Padmanabhan's RADAR — the paper's own exemplar of the
probabilistic family's ancestor — matches an observed signal-strength
vector to training fingerprints in *signal space* by Euclidean distance
and averages the top-``k`` training positions.  With ``k = 1`` this is
the classic NNSS; ``k > 1`` interpolates between training points, which
(unlike the paper's §5.1 argmax) can land between grid cells.

Missing-data policy matches the probabilistic localizer: a comparison
happens over the APs both sides heard, mismatched presence costs a
fixed per-AP penalty, and distances are normalized by the count of
compared APs so fingerprints with different audible sets stay
comparable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase


@register_algorithm("knn")
class KNNLocalizer(Localizer):
    """k-nearest neighbours in signal space.

    Parameters
    ----------
    k:
        Neighbours averaged into the answer.  ``k = 1`` names the
        nearest training point (like §5.1); larger ``k`` interpolates.
    mismatch_penalty_db:
        Squared-dB charge per AP heard on exactly one side.
    weighted:
        If True, neighbours are weighted by inverse signal distance
        (the common WKNN variant).
    min_heard:
        Minimum APs heard in the observation for a valid answer.  The
        default 2 matches the other fingerprinting methods; the
        fallback chain's nearest-training-point tier runs with 1 so it
        can answer as long as *anything* is audible.
    """

    def __init__(
        self,
        k: int = 3,
        mismatch_penalty_db: float = 12.0,
        weighted: bool = False,
        min_heard: int = 2,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if mismatch_penalty_db < 0:
            raise ValueError(f"mismatch penalty must be non-negative, got {mismatch_penalty_db}")
        if min_heard < 1:
            raise ValueError(f"min_heard must be >= 1, got {min_heard}")
        self.k = int(k)
        self.mismatch_penalty_db = float(mismatch_penalty_db)
        self.weighted = bool(weighted)
        self.min_heard = int(min_heard)
        self._db: Optional[TrainingDatabase] = None
        self._means: Optional[np.ndarray] = None

    def fit(self, db: TrainingDatabase) -> "KNNLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        self._means = db.mean_matrix()
        # Fit-time precomputation (see probabilistic.py): NaN-free
        # filled matrices so scoring is pure broadcast arithmetic.
        train_heard = np.isfinite(self._means)
        self._train_heard = train_heard
        self._mean_filled = np.where(train_heard, self._means, 0.0)
        self._penalty_sq = self.mismatch_penalty_db**2
        self._positions = db.positions()
        return self

    def _dist_rows(self, obs_rows: np.ndarray) -> np.ndarray:
        """``(M, A)`` aligned mean rows → ``(M, L)`` RMS signal distance.

        Shared by the single and batch paths (see
        ``ProbabilisticLocalizer._ll_rows`` for the parity reasoning).
        """
        means = self._means
        if obs_rows.shape[1] != means.shape[1]:
            raise ValueError(
                f"observation has {obs_rows.shape[1]} AP columns, "
                f"training database has {means.shape[1]}"
            )
        obs_heard = np.isfinite(obs_rows)
        both = obs_heard[:, None, :] & self._train_heard[None, :, :]
        diff = np.where(both, obs_rows[:, None, :] - self._mean_filled[None, :, :], 0.0)
        sq = (diff**2).sum(axis=2)
        mismatch = (obs_heard[:, None, :] ^ self._train_heard[None, :, :]).sum(axis=2)
        sq = sq + mismatch * self._penalty_sq
        denom = np.maximum(both.sum(axis=2) + mismatch, 1)
        return np.sqrt(sq / denom)

    def signal_distances(self, observation: Observation) -> np.ndarray:
        """Per-training-point RMS signal distance (dB), vectorized."""
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        return self._dist_rows(observation.mean_rssi()[None, :])[0].copy()

    def signal_distance_matrix(self, observations) -> np.ndarray:
        """Batched :meth:`signal_distances`: ``(n_obs, n_locations)``.

        One ``(M, L, A)`` broadcast instead of M separate passes — the
        throughput path for bulk queries.
        """
        self._check_fitted("_means")
        return self._dist_rows(self._mean_rows(observations, self._db.bssids))

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`)."""
        self._check_fitted("_means")
        obs_rows = self._mean_rows(observations, self._db.bssids)
        dist = self._dist_rows(obs_rows)  # (M, L)
        heard_counts = np.isfinite(obs_rows).sum(axis=1)
        k = min(self.k, dist.shape[1])
        idx = np.argsort(dist, axis=1)[:, :k]  # (M, k)
        positions = self._positions  # (L, 2)
        rows = np.arange(dist.shape[0])[:, None]
        neighbor_d = dist[rows, idx]
        if self.weighted:
            w = 1.0 / np.maximum(neighbor_d, 1e-6)
            w = w / w.sum(axis=1, keepdims=True)
        else:
            w = np.full((dist.shape[0], k), 1.0 / k)
        est = np.einsum("mk,mkc->mc", w, positions[idx])
        records = self._db.records
        out = []
        for m in range(len(observations)):
            nearest = records[int(idx[m, 0])]
            out.append(
                LocationEstimate(
                    position=Point(float(est[m, 0]), float(est[m, 1])),
                    location_name=nearest.name if k == 1 else None,
                    score=-float(neighbor_d[m, 0]),
                    valid=bool(heard_counts[m] >= self.min_heard),
                    details={
                        "neighbors": [records[int(i)].name for i in idx[m]],
                        # copy: neighbor_d[m] is a live row view of the
                        # whole (M, k) matrix (see probabilistic.py).
                        "signal_distances_db": neighbor_d[m].copy(),
                    },
                )
            )
        return out

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_means")
        observation = self._aligned(observation, self._db.bssids)
        dist = self.signal_distances(observation)
        k = min(self.k, len(dist))
        idx = np.argsort(dist)[:k]
        positions = self._db.positions()[idx]
        if self.weighted:
            w = 1.0 / np.maximum(dist[idx], 1e-6)
            w = w / w.sum()
        else:
            w = np.full(k, 1.0 / k)
        est = (positions * w[:, None]).sum(axis=0)
        nearest = self._db.records[int(idx[0])]
        valid = bool(np.isfinite(observation.mean_rssi()).sum() >= self.min_heard)
        return LocationEstimate(
            position=Point(float(est[0]), float(est[1])),
            location_name=nearest.name if k == 1 else None,
            score=-float(dist[idx[0]]),
            valid=valid,
            details={
                "neighbors": [self._db.records[int(i)].name for i in idx],
                "signal_distances_db": dist[idx],
            },
        )
