"""The batched scoring engine: chunked, optionally sharded `locate_many`.

Every localizer's Phase-2 scoring is a broadcastable computation, so a
bulk request is best served as a handful of matrix passes instead of M
Python round trips.  This module is the execution layer those kernels
share:

* **Chunking** — a batch is evaluated in fixed-size chunks so the
  working set of the ``(M, L, A)`` broadcast stays cache-sized and
  memory-bounded no matter how large the request.  Chunking never
  changes answers: every kernel is independent per observation row.
* **Sharding** — batches at or above ``shard_threshold`` fan the chunks
  out across :mod:`repro.parallel` worker processes.  The fitted
  localizer is pickled to the workers, so sharding pays only for big
  batches on multi-core hosts; it is off by default
  (``ParallelConfig(max_workers=1)``) and explicit where enabled (the
  CLI ``--shard`` flag, or :func:`set_batch_config`).
* **Instrumentation** — a per-request counter (``batch.requests``),
  per-chunk spans (``batch.chunk``), chunk and shard counters
  (``batch.chunks``, ``batch.shard``, ``batch.sharded_requests``) on
  the global :mod:`repro.obs` registry, complementing the per-batch
  latency histograms emitted by
  :class:`~repro.algorithms.base.Localizer`.  Metrics emitted *inside*
  shard workers (e.g. fallback-tier decisions) ride back to the parent
  registry as per-chunk deltas merged by :mod:`repro.parallel.pool`,
  so sharded and serial runs report identical totals.

A localizer participates by defining ``_locate_chunk(observations)``
— its vectorized single-chunk kernel, answer-identical to ``locate``
per observation; :meth:`Localizer.locate_many` routes every batch
through :func:`run_batched` automatically.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.parallel.pool import ParallelConfig, parallel_map

__all__ = [
    "BatchConfig",
    "get_batch_config",
    "set_batch_config",
    "run_batched",
]


@dataclass(frozen=True)
class BatchConfig:
    """Knobs controlling :func:`run_batched`.

    Attributes
    ----------
    chunk_size:
        Observations evaluated per vectorized kernel pass.  Bounds the
        ``(chunk, L, A)`` broadcast working set; 256 keeps a typical
        survey's broadcast in the tens of megabytes.
    shard_threshold:
        Batches with at least this many observations ship their chunks
        to a process pool (when ``parallel`` allows more than one
        worker).  ``None`` disables sharding outright.
    parallel:
        Worker-pool configuration for the sharded path.  The default
        single worker keeps execution serial — sharding is opt-in
        because pickling a fitted localizer to workers only pays for
        genuinely large batches.
    """

    chunk_size: int = 256
    shard_threshold: Optional[int] = 2048
    parallel: ParallelConfig = field(
        default_factory=lambda: ParallelConfig(max_workers=1)
    )


_default_config = BatchConfig()


def get_batch_config() -> BatchConfig:
    """The process-wide default :class:`BatchConfig`."""
    return _default_config


def set_batch_config(config: BatchConfig) -> BatchConfig:
    """Replace the process-wide default; returns the previous config."""
    global _default_config
    previous = _default_config
    _default_config = config
    return previous


def _chunks(items: Sequence[Any], size: int) -> List[Sequence[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


# ----------------------------------------------------------------------
# Pack-spec sharding: ship a frozen-pack *path* to workers, not arrays.
#
# The classic shard path pickles the bound chunk kernel — and with it
# the whole fitted localizer (mean/std matrices, ranging tables) — to
# every worker, per call.  A localizer fitted from a frozen pack
# (:mod:`repro.core.frozenpack`) can instead advertise a small spec
# ``{"pack_path", "stat", "algorithm", "kwargs"}``; workers rebuild the
# localizer once from the mmap'd pack (page-cache shared with the
# parent) and memoize it for the life of the worker process.
# ----------------------------------------------------------------------

#: Worker-process memo: spec key → fitted localizer.  One entry only —
#: a worker serves one model at a time; a new spec (new pack file or
#: new algorithm) evicts the old.
_SPEC_MEMO: Dict[Tuple, Any] = {}


def _spec_key(spec: Dict[str, Any]) -> Tuple:
    return (
        spec["pack_path"],
        tuple(spec.get("stat") or ()),
        spec["algorithm"],
        repr(sorted((spec.get("kwargs") or {}).items())),
    )


def _localizer_from_spec(spec: Dict[str, Any]):
    key = _spec_key(spec)
    localizer = _SPEC_MEMO.get(key)
    if localizer is None:
        import repro.algorithms  # populate the registry  # noqa: F401
        from repro.algorithms.base import make_localizer
        from repro.core.frozenpack import load_frozen_db

        # The rebuild must not perturb the worker's metrics delta:
        # sharded and serial runs of the same batch report identical
        # totals (the PR 4 invariant), and fit-time counters fired
        # inside a worker would break that equality.
        was_enabled = obs.set_enabled(False)
        try:
            db = load_frozen_db(spec["pack_path"])
            localizer = make_localizer(
                spec["algorithm"], **(spec.get("kwargs") or {})
            ).fit(db)
        finally:
            obs.set_enabled(was_enabled)
        _SPEC_MEMO.clear()
        _SPEC_MEMO[key] = localizer
    return localizer


def _pack_shard_kernel(spec: Dict[str, Any], chunk: Sequence[Any]) -> List[Any]:
    """Worker-side chunk kernel: rebuild-from-pack (memoized), then score."""
    return _localizer_from_spec(spec)._locate_chunk(chunk)


class _TracedKernel:
    """Picklable shard-kernel wrapper carrying the request's trace context.

    The serving worker's :class:`~repro.obs.TraceContext` rides to the
    pool worker inside the job (as a plain dict, like the pack spec);
    the worker binds it, runs the chunk under a ``batch.shard_chunk``
    span stamped with its pid, and ships every completed span back with
    the results.  :func:`run_batched` unwraps the envelope and absorbs
    the spans into the parent's flight recorder/tracer — so a sharded
    request's trace shows the worker-process spans under the same
    trace id, exactly like an unsharded one shows its chunk spans.
    """

    __slots__ = ("kernel", "ctx_doc")

    def __init__(self, kernel: Callable[[Sequence[Any]], List[Any]], ctx_doc: Dict[str, Any]):
        self.kernel = kernel
        self.ctx_doc = ctx_doc

    def __call__(self, chunk: Sequence[Any]) -> Dict[str, Any]:
        ctx = obs.TraceContext.from_dict(self.ctx_doc)
        with obs.bind(ctx), obs.capture_spans() as events:
            with obs.span("batch.shard_chunk", size=len(chunk), pid=os.getpid()):
                results = self.kernel(chunk)
        return {"__spans__": events, "results": results}


def _unwrap_traced(result: Any) -> Any:
    """Open one worker envelope: absorb its spans, return its results."""
    if isinstance(result, dict) and "__spans__" in result:
        obs.deliver_spans(result["__spans__"])
        return result["results"]
    return result


def run_batched(
    kernel: Callable[[Sequence[Any]], List[Any]],
    items: Sequence[Any],
    label: str = "batch",
    config: Optional[BatchConfig] = None,
    max_chunk: Optional[int] = None,
    pack_spec: Optional[Dict[str, Any]] = None,
) -> List[Any]:
    """Evaluate ``kernel`` over ``items`` in chunks, sharding big batches.

    ``kernel`` must be independent per item (every localizer chunk
    kernel is), so chunk boundaries and sharding cannot change answers
    — only how many items share one vectorized pass.  ``max_chunk``
    lets memory-hungry kernels (e.g. the field-MLE lattice broadcast)
    cap the configured chunk size.  Results come back in input order.
    """
    cfg = config if config is not None else _default_config
    n = len(items)
    if n == 0:
        return []
    # One per-request counter emitted identically on every path (single
    # chunk, chunked serial, sharded): the parity anchor that sharded
    # and serial runs of the same batch must agree on after the
    # worker-delta merge (see docs/observability.md).
    obs.counter("batch.requests", algorithm=label).inc(n)
    size = max(1, int(cfg.chunk_size))
    if max_chunk is not None:
        size = max(1, min(size, int(max_chunk)))
    if n <= size:
        return list(kernel(items))

    chunks = _chunks(items, size)
    obs.counter("batch.chunks", algorithm=label).inc(len(chunks))

    workers = cfg.parallel.resolved_workers() if cfg.parallel is not None else 1
    if (
        cfg.shard_threshold is not None
        and n >= cfg.shard_threshold
        and workers > 1
        and len(chunks) > 1
    ):
        # Fan the chunks out across worker processes.  parallel_map
        # falls back to serial execution (visibly) when the platform
        # cannot start a pool, so the sharded path is never a loss of
        # correctness — only, at worst, of speedup.
        obs.counter("batch.shard", algorithm=label).inc()
        obs.counter("batch.sharded_requests", algorithm=label).inc(n)
        if pack_spec is not None:
            # Ship the pack path, not the model: workers rebuild from
            # the mmap'd pack once and memoize (_localizer_from_spec).
            obs.counter("batch.shard_pack", algorithm=label).inc()
            shard_kernel = functools.partial(_pack_shard_kernel, pack_spec)
        else:
            shard_kernel = kernel
        ctx = obs.current_context()
        if ctx is not None:
            # Serialize the request's trace context into the job so the
            # pool workers' spans stitch under the same trace id.
            shard_kernel = _TracedKernel(shard_kernel, ctx.to_dict())
        with obs.span(
            "batch.shard", algorithm=label, n_items=n, n_chunks=len(chunks)
        ):
            shard_results = parallel_map(
                shard_kernel,
                chunks,
                config=ParallelConfig(
                    max_workers=workers,
                    chunk_size=cfg.parallel.chunk_size,
                    serial_threshold=2,
                ),
            )
            if ctx is not None:
                shard_results = [_unwrap_traced(shard) for shard in shard_results]
        return [estimate for shard in shard_results for estimate in shard]

    out: List[Any] = []
    for index, chunk in enumerate(chunks):
        with obs.span(
            "batch.chunk", algorithm=label, index=index, size=len(chunk)
        ):
            out.extend(kernel(chunk))
    return out
