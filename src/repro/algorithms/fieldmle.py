"""Continuous-space maximum likelihood over an interpolated radio map.

The §5.1 approach "does not return the coordinate values of the
observed location, but returns the most approximate training location
instead" — its answers live on the survey grid.  This localizer removes
that quantization: interpolate the training means into a continuous
radio map (:class:`~repro.algorithms.tracking.particle.RSSIField`),
evaluate the Gaussian likelihood of the observation **everywhere** on a
fine candidate lattice, and return the argmax — optionally refined by a
local quadratic fit around the best cell (sub-cell accuracy for free).

This is the natural "more accurate and finer-grained observation data
processing algorithm" the paper's future work (§6.2) asks for, and the
static single-shot counterpart of the particle filter's emission model.
The likelihood evaluation is one broadcasted matrix expression over all
candidate cells (vectorized per the hpc-parallel guides), so a 1-ft
lattice over the §5 house costs ~2k cells × 4 APs per query.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.algorithms.tracking.particle import RSSIField
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase


@register_algorithm("fieldmle")
class FieldMLELocalizer(Localizer):
    """Grid-search ML over an IDW-interpolated radio map.

    Parameters
    ----------
    resolution_ft:
        Candidate lattice pitch.  1–2 ft is effectively continuous
        relative to indoor RSSI error.
    margin_ft:
        Lattice extension beyond the training grid's bounding box (the
        true position can sit slightly outside the surveyed hull).
    k:
        IDW neighbours for the field interpolation.
    refine:
        Quadratic sub-cell refinement of the argmax.
    field:
        ``"idw"`` (default) or ``"gp"`` — the radio-map interpolator
        (see :mod:`repro.algorithms.radiomap`).  The GP wants
        ``ap_positions`` for its log-distance trend.
    ap_positions:
        Optional BSSID → position mapping (GP trend only).
    tune_gp:
        For the GP field, grid-search kernel hyper-parameters by
        marginal likelihood during :meth:`fit` (recovers the site's
        shadowing correlation length from the survey itself).
    """

    def __init__(
        self,
        resolution_ft: float = 2.0,
        margin_ft: float = 5.0,
        k: int = 4,
        refine: bool = True,
        field: str = "idw",
        ap_positions=None,
        tune_gp: bool = True,
    ):
        if resolution_ft <= 0:
            raise ValueError(f"resolution must be positive, got {resolution_ft}")
        if margin_ft < 0:
            raise ValueError(f"margin must be non-negative, got {margin_ft}")
        if field not in ("idw", "gp"):
            raise ValueError(f"field must be 'idw' or 'gp', got {field!r}")
        self.resolution_ft = float(resolution_ft)
        self.margin_ft = float(margin_ft)
        self.k = int(k)
        self.refine = bool(refine)
        self.field_type = field
        self.ap_positions = dict(ap_positions or {})
        self.tune_gp = bool(tune_gp)
        self._db: Optional[TrainingDatabase] = None
        self._field: Optional[RSSIField] = None
        self._lattice: Optional[np.ndarray] = None  # (n_cells, 2)
        self._expected: Optional[np.ndarray] = None  # (n_cells, n_aps)
        self._shape: Optional[Tuple[int, int]] = None
        self._xs: Optional[np.ndarray] = None
        self._ys: Optional[np.ndarray] = None
        self._sigma: Optional[np.ndarray] = None

    #: The chunk kernel's working set is (chunk, n_cells, n_aps) — a
    #: dense lattice, so cap the engine chunk tighter than the default.
    _batch_chunk_cap = 128

    def fit(self, db: TrainingDatabase) -> "FieldMLELocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        if self.field_type == "gp":
            from repro.algorithms.radiomap import GPRadioMap

            self._field = GPRadioMap(db, ap_positions=self.ap_positions)
            if self.tune_gp:
                self._field.fit_hyperparameters()
        else:
            self._field = RSSIField(db, k=self.k)
        pos = db.positions()
        x0, y0 = pos.min(axis=0) - self.margin_ft
        x1, y1 = pos.max(axis=0) + self.margin_ft
        self._xs = np.arange(x0, x1 + self.resolution_ft / 2, self.resolution_ft)
        self._ys = np.arange(y0, y1 + self.resolution_ft / 2, self.resolution_ft)
        gx, gy = np.meshgrid(self._xs, self._ys)
        self._shape = gx.shape
        self._lattice = np.column_stack([gx.ravel(), gy.ravel()])
        # Precompute the expected-RSSI map once: Phase 2 is then a pure
        # broadcast against the observation.  sigma_db is a per-call
        # copy on the field, so snapshot it here too.
        self._expected = self._field.expected_rssi(self._lattice)
        self._sigma = self._field.sigma_db
        return self

    def _ll_rows(self, obs_rows: np.ndarray) -> np.ndarray:
        """``(M, A)`` aligned mean rows → ``(M, n_cells)`` log-likelihoods.

        Shared by the single and batch paths: unheard APs contribute
        exactly zero (masked, not dropped), so each row is independent
        of its chunk-mates — bit-for-bit batch/single parity.  Rows
        with nothing heard come back all-zero (the caller decides how
        to report them).
        """
        if obs_rows.shape[1] != self._expected.shape[1]:
            raise ValueError(
                f"observation has {obs_rows.shape[1]} AP columns, "
                f"training had {self._expected.shape[1]}"
            )
        heard = np.isfinite(obs_rows)  # (M, A)
        z = np.where(
            heard[:, None, :],
            (obs_rows[:, None, :] - self._expected[None, :, :])
            / self._sigma[None, None, :],
            0.0,
        )
        return -0.5 * (z**2).sum(axis=2)

    def log_likelihood_grid(self, observation: Observation) -> np.ndarray:
        """Per-cell log likelihood, shape ``(ny, nx)``."""
        self._check_fitted("_expected")
        observation = self._aligned(observation, self._db.bssids)
        obs = observation.mean_rssi()
        return self._ll_rows(obs[None, :])[0].reshape(self._shape)

    def _refine_peak(self, ll: np.ndarray, iy: int, ix: int) -> Tuple[float, float]:
        """Quadratic sub-cell peak via the 1-D three-point formula per axis."""

        def offset(fm: float, f0: float, fp: float) -> float:
            denom = fm - 2.0 * f0 + fp
            if denom >= -1e-12:  # not a proper local max
                return 0.0
            return float(np.clip(0.5 * (fm - fp) / denom, -0.5, 0.5))

        dx = dy = 0.0
        if 0 < ix < ll.shape[1] - 1:
            dx = offset(ll[iy, ix - 1], ll[iy, ix], ll[iy, ix + 1])
        if 0 < iy < ll.shape[0] - 1:
            dy = offset(ll[iy - 1, ix], ll[iy, ix], ll[iy + 1, ix])
        return (
            float(self._xs[ix] + dx * self.resolution_ft),
            float(self._ys[iy] + dy * self.resolution_ft),
        )

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_expected")
        observation = self._aligned(observation, self._db.bssids)
        heard = observation.heard_mask()
        if not heard.any():
            return LocationEstimate(
                position=None, valid=False, details={"reason": "nothing heard"}
            )
        ll = self.log_likelihood_grid(observation)
        iy, ix = np.unravel_index(int(np.argmax(ll)), ll.shape)
        if self.refine:
            x, y = self._refine_peak(ll, int(iy), int(ix))
        else:
            x, y = float(self._xs[ix]), float(self._ys[iy])
        return LocationEstimate(
            position=Point(x, y),
            location_name=None,
            score=float(ll[iy, ix]),
            valid=bool(heard.sum() >= 2),
            details={"grid_peak": (float(self._xs[ix]), float(self._ys[iy]))},
        )

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`)."""
        self._check_fitted("_expected")
        obs_rows = self._mean_rows(observations, self._db.bssids)
        heard = np.isfinite(obs_rows)  # (M, A)
        ll_rows = self._ll_rows(obs_rows)  # (M, n_cells)
        # Whole-chunk peak pass: the flat argmax is the same element
        # locate's np.argmax(grid) finds, and divmod by the row width is
        # np.unravel_index for C order.
        heard_any = heard.any(axis=1)
        valid = heard.sum(axis=1) >= 2
        best = ll_rows.argmax(axis=1)
        iy_all, ix_all = np.divmod(best, self._shape[1])
        scores = ll_rows[np.arange(ll_rows.shape[0]), best]
        out = []
        for m in range(len(observations)):
            if not heard_any[m]:
                out.append(
                    LocationEstimate(
                        position=None, valid=False, details={"reason": "nothing heard"}
                    )
                )
                continue
            iy, ix = int(iy_all[m]), int(ix_all[m])
            if self.refine:
                x, y = self._refine_peak(ll_rows[m].reshape(self._shape), iy, ix)
            else:
                x, y = float(self._xs[ix]), float(self._ys[iy])
            out.append(
                LocationEstimate(
                    position=Point(x, y),
                    location_name=None,
                    score=float(scores[m]),
                    valid=bool(valid[m]),
                    details={"grid_peak": (float(self._xs[ix]), float(self._ys[iy]))},
                )
            )
        return out
