"""The localizer interface and the observation/estimate types.

The paper's two-phase structure (§3) is the interface:

* **Phase 1 (training)** — :meth:`Localizer.fit` consumes a
  :class:`~repro.core.trainingdb.TrainingDatabase` and learns "certain
  mapping relationship between the locations and signal strengths".
* **Phase 2 (working)** — :meth:`Localizer.locate` consumes one
  :class:`Observation` (a window of scan sweeps at the unknown spot)
  and returns a :class:`LocationEstimate`.

Algorithms register themselves under a short name so experiments and
the CLI can construct them by string (``make_localizer("probabilistic")``).
"""

from __future__ import annotations

import abc
import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type

import numpy as np

from repro import obs
from repro.algorithms.engine import run_batched
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase


def _nan_column_mean(samples: np.ndarray) -> np.ndarray:
    """Column means ignoring NaN, NaN for all-NaN columns — silently.

    Equivalent to ``np.nanmean(..., axis=0)`` without the "Mean of empty
    slice" RuntimeWarning: an AP that was never heard is an expected
    state, not a numerical anomaly.
    """
    finite = np.isfinite(samples)
    counts = finite.sum(axis=0)
    sums = np.where(finite, samples, 0.0).sum(axis=0)
    return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


@dataclass(frozen=True)
class Observation:
    """A Phase-2 measurement window at one (unknown) position.

    ``samples`` is an ``(n_sweeps, n_aps)`` matrix in the same BSSID
    column order as the training database, NaN marking misses — the
    toolkit-wide RSSI layout.  Helpers expose the summaries different
    algorithms want: the paper's Phase-2 protocol "uses only the average
    signal strength value" (:meth:`mean_rssi`), while the distribution-
    aware extensions read the full matrix.
    """

    samples: np.ndarray
    bssids: Sequence[str] = ()

    def __post_init__(self):
        arr = np.atleast_2d(np.asarray(self.samples, dtype=float))
        object.__setattr__(self, "samples", arr)
        if arr.ndim != 2:
            raise ValueError(f"observation samples must be 2-D, got shape {arr.shape}")
        if self.bssids and len(self.bssids) != arr.shape[1]:
            raise ValueError(
                f"{len(self.bssids)} BSSIDs for {arr.shape[1]} sample columns"
            )

    @property
    def n_aps(self) -> int:
        return self.samples.shape[1]

    @property
    def n_sweeps(self) -> int:
        return self.samples.shape[0]

    def mean_rssi(self) -> np.ndarray:
        """Per-AP mean over detected sweeps (NaN if never heard)."""
        return _nan_column_mean(self.samples)

    def detection_rate(self) -> np.ndarray:
        if self.n_sweeps == 0:
            return np.zeros(self.n_aps)
        return np.isfinite(self.samples).mean(axis=0)

    def heard_mask(self) -> np.ndarray:
        """Boolean per-AP: heard in at least one sweep."""
        return np.isfinite(self.samples).any(axis=0)

    def truncated(self, n_sweeps: int) -> "Observation":
        """The first ``n_sweeps`` sweeps (averaging-window ablations)."""
        if n_sweeps < 1:
            raise ValueError(f"n_sweeps must be >= 1, got {n_sweeps}")
        return Observation(self.samples[:n_sweeps], self.bssids)

    def reordered(self, bssid_order: Sequence[str]) -> "Observation":
        """Columns permuted into ``bssid_order``.

        Requires this observation to carry BSSIDs.  Target BSSIDs absent
        from the observation become all-NaN columns (AP never heard);
        observation columns absent from the target are dropped.  This is
        how localizers align a wild observation to their training
        database's column order.
        """
        if not self.bssids:
            raise ValueError("observation carries no BSSIDs; cannot reorder")
        col = {b: j for j, b in enumerate(self.bssids)}
        out = np.full((self.n_sweeps, len(bssid_order)), np.nan)
        for j, b in enumerate(bssid_order):
            src = col.get(b)
            if src is not None:
                out[:, j] = self.samples[:, src]
        return Observation(out, bssids=list(bssid_order))


@dataclass(frozen=True)
class LocationEstimate:
    """A Phase-2 answer.

    ``position`` is the coordinate estimate (feet).  ``location_name``
    is set when the algorithm answers in training-point/location terms
    (the probabilistic approach "does not return the coordinate values
    of the observed location, but returns the most approximate training
    location instead").  ``score`` is algorithm-specific confidence
    (likelihood, inverse distance, vote share); ``valid`` mirrors the
    paper's notion of an estimation that the system is willing to report
    at all.
    """

    position: Optional[Point]
    location_name: Optional[str] = None
    score: float = 0.0
    valid: bool = True
    details: Dict[str, object] = field(default_factory=dict)

    def error_to(self, true_position: Point) -> float:
        """Euclidean deviation (ft); +inf for invalid/position-less answers."""
        if not self.valid or self.position is None:
            return float("inf")
        return self.position.distance_to(true_position)


def invalid_estimate(reason: str, **details) -> LocationEstimate:
    """A positionless, invalid estimate carrying a machine-readable reason.

    The toolkit-wide convention for declining to answer: ``reason`` goes
    in ``details["reason"]`` where the CLI, the fallback chain and the
    benchmarks all look for it.
    """
    return LocationEstimate(
        position=None, valid=False, details={"reason": reason, **details}
    )


def _algorithm_label(localizer: "Localizer") -> str:
    return localizer.name or type(localizer).__name__


def _count_estimate(label: str, estimate: LocationEstimate) -> None:
    obs.counter("locate.valid" if estimate.valid else "locate.invalid", algorithm=label).inc()


def _instrument_locate(fn: Callable) -> Callable:
    """Wrap a ``locate`` implementation with latency + validity metrics.

    Requests served through :meth:`Localizer.locate_many` suppress the
    per-call emission (``_obs_in_batch``) so each observation is counted
    exactly once whether it arrives singly or in a batch; nested tiers
    (the fallback chain calling its member localizers) are separate
    objects and keep their own per-algorithm series.
    """

    @functools.wraps(fn)
    def locate(self, observation):
        if getattr(self, "_obs_in_batch", False):
            return fn(self, observation)
        label = _algorithm_label(self)
        with obs.span(f"locate.{label}"):
            t0 = time.perf_counter()
            estimate = fn(self, observation)
        obs.histogram("locate.latency_ms", algorithm=label).observe(
            1000.0 * (time.perf_counter() - t0)
        )
        _count_estimate(label, estimate)
        if estimate.valid:
            obs.histogram("quality.confidence", algorithm=label).observe(estimate.score)
        return estimate

    locate._obs_instrumented = True
    return locate


def _instrument_locate_many(fn: Callable) -> Callable:
    """Wrap a ``locate_many`` with batch latency + per-request validity."""

    @functools.wraps(fn)
    def locate_many(self, observations):
        if getattr(self, "_obs_in_batch", False):
            return fn(self, observations)
        label = _algorithm_label(self)
        self._obs_in_batch = True
        try:
            with obs.span(f"locate_many.{label}"):
                t0 = time.perf_counter()
                estimates = fn(self, observations)
        finally:
            self._obs_in_batch = False
        obs.histogram("locate.batch_ms", algorithm=label).observe(
            1000.0 * (time.perf_counter() - t0)
        )
        obs.counter("locate.batched", algorithm=label).inc(len(estimates))
        # One aggregated emission per batch, not one lookup per estimate:
        # a per-request loop here costs ~5% of the whole PERF-BATCH path.
        n_valid = sum(1 for e in estimates if e.valid)
        if n_valid:
            obs.counter("locate.valid", algorithm=label).inc(n_valid)
            # Estimation-confidence histogram (per localizer): one
            # lookup + one lock for the whole batch via observe_many.
            obs.histogram("quality.confidence", algorithm=label).observe_many(
                e.score for e in estimates if e.valid
            )
        if n_valid != len(estimates):
            obs.counter("locate.invalid", algorithm=label).inc(len(estimates) - n_valid)
        return estimates

    locate_many._obs_instrumented = True
    return locate_many


class Localizer(abc.ABC):
    """Phase-1 fit / Phase-2 locate, the toolkit's algorithm contract.

    Every concrete ``locate``/``locate_many`` override is transparently
    instrumented at class-creation time (latency histograms and
    valid/invalid counters on the global :mod:`repro.obs` registry);
    the raw implementation stays reachable as ``locate.__wrapped__``.
    """

    #: Registry name, set by :func:`register_algorithm`.
    name: str = ""

    #: Re-entrancy flag: True while this object is inside locate_many.
    _obs_in_batch: bool = False

    #: Vectorized single-chunk kernel.  Subclasses define this as a
    #: method ``_locate_chunk(observations) -> List[LocationEstimate]``
    #: (answer-identical, observation for observation, to ``locate``)
    #: and the base ``locate_many`` routes batches through the chunked/
    #: sharded engine automatically.  ``None`` falls back to the loop.
    _locate_chunk = None

    #: Per-instance :class:`~repro.algorithms.engine.BatchConfig`
    #: override; ``None`` uses the process-wide default.
    batch_config = None

    #: Kernel-specific cap on the engine chunk size, for kernels whose
    #: per-observation working set is large (e.g. a dense lattice).
    _batch_chunk_cap: Optional[int] = None

    #: Optional frozen-pack shard spec ``{"pack_path", "stat",
    #: "algorithm", "kwargs"}``.  When set (the serving layer sets it
    #: on models fitted from a :mod:`repro.core.frozenpack` pack), the
    #: sharded engine ships this small dict to worker processes instead
    #: of pickling the fitted arrays per shard; workers rebuild from
    #: the mmap'd pack once and memoize.  Answers are identical either
    #: way — the rebuild is the same fit on the same bytes.
    shard_pack_spec: Optional[dict] = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        for attr, wrapper in (
            ("locate", _instrument_locate),
            ("locate_many", _instrument_locate_many),
        ):
            fn = cls.__dict__.get(attr)
            if fn is not None and not getattr(fn, "_obs_instrumented", False):
                setattr(cls, attr, wrapper(fn))

    @abc.abstractmethod
    def fit(self, db: TrainingDatabase) -> "Localizer":
        """Phase 1: learn the location ↔ signal-strength mapping."""

    @abc.abstractmethod
    def locate(self, observation: Observation) -> LocationEstimate:
        """Phase 2: resolve one observation to a location."""

    def locate_many(self, observations: Sequence[Observation]) -> List[LocationEstimate]:
        """Batch Phase 2: chunked, optionally sharded, vectorized scoring.

        Localizers that define ``_locate_chunk`` are evaluated through
        the batched scoring engine (fixed-size chunks bound the working
        set; batches above the shard threshold fan out across
        :mod:`repro.parallel` workers).  Localizers without a kernel
        fall back to the per-observation loop.  Either way, results are
        answer-identical to calling :meth:`locate` per observation.
        """
        observations = list(observations)
        if self._locate_chunk is None:
            return [self.locate(o) for o in observations]
        return run_batched(
            self._locate_chunk,
            observations,
            label=_algorithm_label(self),
            config=self.batch_config,
            max_chunk=self._batch_chunk_cap,
            pack_spec=self.shard_pack_spec,
        )

    def _check_fitted(self, attr: str) -> None:
        if not hasattr(self, attr) or getattr(self, attr) is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted — call fit(training_db) first"
            )

    @staticmethod
    def _aligned(observation: Observation, bssids: Sequence[str]) -> Observation:
        """Align an observation's columns to the training BSSID order.

        Observations that carry BSSIDs are permuted to match (scan tools
        list APs in discovery order, which rarely equals survey order);
        bare observations are trusted to already be in training order.
        """
        if observation.bssids and list(observation.bssids) != list(bssids):
            return observation.reordered(bssids)
        return observation

    @staticmethod
    def _mean_rows(
        observations: Sequence[Observation], bssids: Sequence[str]
    ) -> np.ndarray:
        """``(M, A)`` matrix of aligned per-observation mean RSSI.

        Row ``m`` is exactly ``_aligned(observations[m], bssids)
        .mean_rssi()`` — the kernels' shared first step, so batch and
        single paths consume bit-identical inputs.  When every
        observation has the same sweep count (the common bulk-request
        shape) the means are computed as one stacked ``(M, S, A)``
        reduction; numpy's axis reduction order depends only on the
        reduction length, so the stacked sums equal the per-observation
        sums bit for bit.
        """
        aligned = [Localizer._aligned(o, bssids) for o in observations]
        if len(aligned) > 1 and len({a.samples.shape[0] for a in aligned}) == 1:
            stacked = np.stack([a.samples for a in aligned])
            finite = np.isfinite(stacked)
            counts = finite.sum(axis=1)
            sums = np.where(finite, stacked, 0.0).sum(axis=1)
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        return np.vstack([a.mean_rssi() for a in aligned])


# The default batch loop is instrumented too, so subclasses that never
# override locate_many still emit batch metrics (their inner locate
# calls are suppressed by the re-entrancy flag — one count per request).
Localizer.locate_many = _instrument_locate_many(Localizer.locate_many)


_REGISTRY: Dict[str, Callable[..., Localizer]] = {}


def register_algorithm(name: str) -> Callable[[Type[Localizer]], Type[Localizer]]:
    """Class decorator: register a localizer under ``name``."""

    def deco(cls: Type[Localizer]) -> Type[Localizer]:
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def make_localizer(name: str, **kwargs) -> Localizer:
    """Construct a registered localizer by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_algorithms() -> List[str]:
    return sorted(_REGISTRY)
