"""Degraded-mode localization: a tiered fallback chain.

§5.1 reports that only about 60 % of observations produce a valid
estimate, and §5.2's geometric approach needs every AP ranged — a
single silenced AP turns a working deployment into one that answers
nothing.  A production system cannot shrug; it must degrade.

:class:`FallbackLocalizer` chains localizers from most-precise to
most-robust (by default geometric → probabilistic → nearest training
point) and answers with the first tier willing to commit, recording
*why* each upper tier declined — AP dropout leaving too few ranged
APs, out-of-bounds intersections, likelihood underflow — so operators
can see not just the answer but the health of the deployment that
produced it.  The diagnostics ride in ``LocationEstimate.details``
(``tier``, ``declined``) and surface through
:meth:`repro.core.system.LocalizationSystem.locate` as
``ResolvedLocation.diagnostics``.

Tier failures at *fit* time (e.g. the geometric tier with too few
usable SS↔distance fits) quarantine the tier rather than abort: a
degraded chain that can still answer beats a perfect chain that never
trained.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    invalid_estimate,
    make_localizer,
    register_algorithm,
)
from repro.core.trainingdb import TrainingDatabase

#: Default tier order: precise-but-brittle first, coarse-but-sturdy last.
DEFAULT_CHAIN = ("geometric", "probabilistic", "nearest")


def _tier_name(tier: Localizer) -> str:
    return tier.name or type(tier).__name__


@register_algorithm("fallback")
class FallbackLocalizer(Localizer):
    """First-willing-tier chain with per-request decline diagnostics.

    Parameters
    ----------
    tiers:
        Localizer instances or registry names, tried in order.  The
        string ``"nearest"`` is shorthand for 1-NN in signal space (the
        nearest-training-point tier, which answers whenever any AP at
        all is heard).  Defaults to :data:`DEFAULT_CHAIN`; the
        geometric tier is silently omitted when no ``ap_positions``
        are available (it cannot even be constructed without them).
    ap_positions:
        BSSID → floor position, forwarded to tiers that need ranging
        geometry (``geometric``, ``multilateration``).
    bounds:
        Optional ``(x0, y0, x1, y1)`` site rectangle (feet).  A tier
        whose answer lands outside it (plus ``bounds_margin_ft``) is
        treated as declined with an out-of-bounds reason — noisy
        ranging routinely intersects circles far off-site.
    bounds_margin_ft:
        Slack added around ``bounds`` before an answer is rejected.
    min_score:
        Optional floor on a tier's ``score``; answers scoring below it
        (e.g. a collapsed log-likelihood) decline as underflow.
    """

    def __init__(
        self,
        tiers: Optional[Sequence[Union[str, Localizer]]] = None,
        ap_positions: Optional[Dict[str, object]] = None,
        bounds: Optional[Tuple[float, float, float, float]] = None,
        bounds_margin_ft: float = 10.0,
        min_score: Optional[float] = None,
    ):
        if bounds is not None and (bounds[2] <= bounds[0] or bounds[3] <= bounds[1]):
            raise ValueError(f"bounds must be (x0, y0, x1, y1) with x1 > x0, y1 > y0: {bounds}")
        if bounds_margin_ft < 0:
            raise ValueError(f"bounds_margin_ft must be non-negative, got {bounds_margin_ft}")
        self.bounds = bounds
        self.bounds_margin_ft = float(bounds_margin_ft)
        self.min_score = min_score
        self.tiers = self._build_tiers(tiers, ap_positions)
        if not self.tiers:
            raise ValueError("fallback chain needs at least one constructible tier")
        self._fitted: Optional[List[Localizer]] = None
        #: tier name → error message for tiers dropped during fit().
        self.fit_errors: Dict[str, str] = {}
        #: Optional tier guard (e.g. a circuit-breaker board, see
        #: :class:`repro.serve.resilience.TierBreakerBoard`): an object
        #: with ``check(tier_name) -> Optional[str]`` — None to let the
        #: tier run, a reason string to skip it as declined — and
        #: ``record(tier_name, ok)`` hearing every per-request outcome
        #: (exceptions are failures; legitimate declines are successes).
        #: ``None`` (the default) keeps the chain byte-identical to the
        #: unguarded behaviour.
        self.tier_guard = None

    @staticmethod
    def _build_tiers(
        tiers: Optional[Sequence[Union[str, Localizer]]],
        ap_positions: Optional[Dict[str, object]],
    ) -> List[Localizer]:
        spec = list(tiers) if tiers is not None else list(DEFAULT_CHAIN)
        built: List[Localizer] = []
        for t in spec:
            if isinstance(t, Localizer):
                built.append(t)
                continue
            if t == "nearest":
                # Last-resort tier: answers as long as any AP is heard.
                built.append(make_localizer("knn", k=1, min_heard=1))
                built[-1].name = "nearest"  # instance-level display name
                continue
            kwargs = {}
            if t in ("geometric", "multilateration"):
                if ap_positions is None:
                    if tiers is None:
                        continue  # default chain degrades gracefully
                    raise ValueError(f"tier {t!r} needs ap_positions")
                kwargs["ap_positions"] = ap_positions
            built.append(make_localizer(t, **kwargs))
        return built

    # ------------------------------------------------------------------
    def fit(self, db: TrainingDatabase) -> "FallbackLocalizer":
        self._fitted = []
        self.fit_errors = {}
        for tier in self.tiers:
            try:
                tier.fit(db)
            except (ValueError, RuntimeError) as exc:
                self.fit_errors[_tier_name(tier)] = str(exc)
                obs.counter("fallback.tier_fit_failed", tier=_tier_name(tier)).inc()
                continue
            self._fitted.append(tier)
        if not self._fitted:
            raise ValueError(
                f"no fallback tier survived fitting: {self.fit_errors}"
            )
        return self

    # ------------------------------------------------------------------
    def _decline_reason(self, tier: Localizer, est: LocationEstimate) -> Optional[str]:
        """Why this tier's answer is not good enough, or None if it is."""
        if not est.valid:
            reason = est.details.get("reason")
            if reason is None and "common_aps" in est.details:
                reason = f"only {est.details['common_aps']} common AP(s)"
            return str(reason) if reason else "invalid estimate"
        if est.position is None and est.location_name is None:
            return "no position or location name"
        if self.min_score is not None and est.score < self.min_score:
            return f"score underflow ({est.score:.3g} < {self.min_score:.3g})"
        if self.bounds is not None and est.position is not None:
            x0, y0, x1, y1 = self.bounds
            m = self.bounds_margin_ft
            p = est.position
            if not (x0 - m <= p.x <= x1 + m and y0 - m <= p.y <= y1 + m):
                return f"out-of-bounds estimate ({p.x:.1f}, {p.y:.1f})"
        return None

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_fitted")
        declined: List[Dict[str, str]] = [
            {"tier": name, "reason": f"fit failed: {msg}"}
            for name, msg in self.fit_errors.items()
        ]
        guard = self.tier_guard
        for tier in self._fitted:
            name = _tier_name(tier)
            if guard is not None:
                skip = guard.check(name)
                if skip is not None:
                    declined.append({"tier": name, "reason": skip})
                    obs.counter("fallback.declined", tier=name).inc()
                    continue
            try:
                est = tier.locate(observation)
            except (ValueError, RuntimeError) as exc:
                if guard is not None:
                    guard.record(name, False)
                declined.append({"tier": name, "reason": f"error: {exc}"})
                obs.counter("fallback.declined", tier=name).inc()
                continue
            if guard is not None:
                guard.record(name, True)
            reason = self._decline_reason(tier, est)
            if reason is not None:
                declined.append({"tier": name, "reason": reason})
                obs.counter("fallback.declined", tier=name).inc()
                continue
            details = dict(est.details)
            details["tier"] = name
            details["declined"] = declined
            obs.counter("fallback.answered", tier=name).inc()
            if declined:
                # Degraded-mode alert: an upper tier had to be skipped.
                obs.counter("quality.degraded_answers", tier=name).inc()
            return LocationEstimate(
                position=est.position,
                location_name=est.location_name,
                score=est.score,
                valid=True,
                details=details,
            )
        obs.counter("fallback.exhausted").inc()
        obs.counter("quality.alert", kind="fallback_exhausted").inc()
        return invalid_estimate("all fallback tiers declined", tier=None, declined=declined)

    # ------------------------------------------------------------------
    def _tier_estimates(self, tier: Localizer, observations):
        """One tier's answers for a pending subset, error-isolated.

        The fast path batches the whole subset through the tier's own
        vectorized ``locate_many``.  If the batch raises (one malformed
        observation poisons a whole vectorized kernel), we re-run the
        subset per observation so each request keeps exactly the
        single-path error isolation; failures come back as the exception
        object in that observation's slot.
        """
        try:
            return tier.locate_many(observations)
        except (ValueError, RuntimeError):
            out = []
            for o in observations:
                try:
                    out.append(tier.locate(o))
                except (ValueError, RuntimeError) as exc:
                    out.append(exc)
            return out

    def _locate_chunk(self, observations):
        """Batched chain: tier-by-tier over the still-pending subset.

        Rather than running the whole chain per observation, each tier
        scores *all* observations it might still answer in one batched
        call; only the declined subset moves down a tier.  Per-request
        diagnostics (``tier``, ``declined``) and the fallback counters
        are identical to the single-observation path.
        """
        self._check_fitted("_fitted")
        observations = list(observations)
        fit_declines = [
            {"tier": name, "reason": f"fit failed: {msg}"}
            for name, msg in self.fit_errors.items()
        ]
        declined: List[List[Dict[str, str]]] = [
            [dict(d) for d in fit_declines] for _ in observations
        ]
        results: List[Optional[LocationEstimate]] = [None] * len(observations)
        pending = list(range(len(observations)))
        guard = self.tier_guard
        for tier in self._fitted:
            if not pending:
                break
            name = _tier_name(tier)
            if guard is not None:
                # One guard decision per tier per chunk: a half-open
                # breaker admits a whole probe chunk, whose per-request
                # outcomes are recorded individually below.
                skip = guard.check(name)
                if skip is not None:
                    for i in pending:
                        declined[i].append({"tier": name, "reason": skip})
                        obs.counter("fallback.declined", tier=name).inc()
                    continue
            outcomes = self._tier_estimates(tier, [observations[i] for i in pending])
            if guard is not None:
                for outcome in outcomes:
                    guard.record(name, not isinstance(outcome, Exception))
            still: List[int] = []
            for i, outcome in zip(pending, outcomes):
                if isinstance(outcome, Exception):
                    declined[i].append({"tier": name, "reason": f"error: {outcome}"})
                    obs.counter("fallback.declined", tier=name).inc()
                    still.append(i)
                    continue
                reason = self._decline_reason(tier, outcome)
                if reason is not None:
                    declined[i].append({"tier": name, "reason": reason})
                    obs.counter("fallback.declined", tier=name).inc()
                    still.append(i)
                    continue
                details = dict(outcome.details)
                details["tier"] = name
                details["declined"] = declined[i]
                obs.counter("fallback.answered", tier=name).inc()
                if declined[i]:
                    obs.counter("quality.degraded_answers", tier=name).inc()
                results[i] = LocationEstimate(
                    position=outcome.position,
                    location_name=outcome.location_name,
                    score=outcome.score,
                    valid=True,
                    details=details,
                )
            pending = still
        for i in pending:
            obs.counter("fallback.exhausted").inc()
            obs.counter("quality.alert", kind="fallback_exhausted").inc()
            results[i] = invalid_estimate(
                "all fallback tiers declined", tier=None, declined=declined[i]
            )
        return results
