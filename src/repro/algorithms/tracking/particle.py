"""Particle filter in continuous floor coordinates.

Where the discrete Bayes filter is confined to the training grid, the
particle filter estimates anywhere on the floor.  It needs an emission
model defined at *arbitrary* positions, which :class:`RSSIField`
provides by inverse-distance-weighted interpolation of the training
means (a standard radio-map interpolator); the emission likelihood is
then the probabilistic approach's Gaussian, evaluated at the
interpolated mean.

Motion is a Gaussian random walk with scale ``speed_ft_s · Δt``, with
systematic (low-variance) resampling when the effective sample size
collapses below half the particle count.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.algorithms.base import LocationEstimate, Observation
from repro.algorithms.tracking.base import Tracker
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase
from repro.parallel.rng import RngLike, resolve_rng


class RSSIField:
    """Interpolated radio map: expected RSSI at any floor position.

    Inverse-distance-weighted (power 2) interpolation of the per-AP
    training means over the ``k`` nearest training points, with the
    per-AP σ taken as the mean training σ.  Vectorized over query
    positions.
    """

    def __init__(self, db: TrainingDatabase, k: int = 4, min_std_db: float = 1.0):
        if len(db) == 0:
            raise ValueError("training database has no locations")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = min(int(k), len(db))
        self._positions = db.positions()  # (L, 2)
        means = db.mean_matrix()
        # Unheard (L, A) cells: treat as detection floor for interpolation.
        self._means = np.where(np.isfinite(means), means, -95.0)
        stds = db.std_matrix()
        with np.errstate(invalid="ignore"):
            per_ap = np.nanmean(stds, axis=0)
        self._sigma = np.where(np.isfinite(per_ap), np.maximum(per_ap, min_std_db), min_std_db)

    @property
    def sigma_db(self) -> np.ndarray:
        """Per-AP emission σ (dB)."""
        return self._sigma.copy()

    def expected_rssi(self, positions: np.ndarray) -> np.ndarray:
        """(n, n_aps) interpolated mean RSSI at ``positions`` (n, 2)."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        d2 = ((pos[:, None, :] - self._positions[None, :, :]) ** 2).sum(axis=2)
        # k nearest training points per query.
        idx = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]  # (n, k)
        rows = np.arange(pos.shape[0])[:, None]
        nd2 = d2[rows, idx]
        w = 1.0 / np.maximum(nd2, 1e-6)
        w /= w.sum(axis=1, keepdims=True)
        return np.einsum("nk,nka->na", w, self._means[idx])


class ParticleFilterTracker(Tracker):
    """SIR particle filter with an interpolated radio-map emission.

    Parameters
    ----------
    field:
        The interpolated radio map (also defines emission σ).
    bounds:
        ``(x_min, y_min, x_max, y_max)`` floor rectangle particles live
        in (initialization and reflection at the edges).
    n_particles, speed_ft_s:
        Filter size and random-walk motion scale.
    rng:
        Seed/generator for all stochastic steps (reproducible tracks).
    """

    def __init__(
        self,
        field: RSSIField,
        bounds: Tuple[float, float, float, float],
        n_particles: int = 500,
        speed_ft_s: float = 4.0,
        rng: RngLike = None,
    ):
        x0, y0, x1, y1 = bounds
        if x0 >= x1 or y0 >= y1:
            raise ValueError(f"degenerate bounds {bounds}")
        if n_particles < 10:
            raise ValueError(f"n_particles must be >= 10, got {n_particles}")
        if speed_ft_s <= 0:
            raise ValueError(f"speed must be positive, got {speed_ft_s}")
        self.field = field
        self.bounds = (float(x0), float(y0), float(x1), float(y1))
        self.n_particles = int(n_particles)
        self.speed_ft_s = float(speed_ft_s)
        self._rng = resolve_rng(rng)
        self._particles: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self.reset()

    def reset(self) -> None:
        x0, y0, x1, y1 = self.bounds
        n = self.n_particles
        self._particles = np.column_stack(
            [self._rng.uniform(x0, x1, n), self._rng.uniform(y0, y1, n)]
        )
        self._weights = np.full(n, 1.0 / n)

    def rebind(self, field: RSSIField) -> bool:
        """Swap the radio map in place (hot reload), keeping the particle
        cloud — the track survives a model swap.  Returns True."""
        self.field = field
        return True

    def _reflect(self) -> None:
        x0, y0, x1, y1 = self.bounds
        p = self._particles
        for dim, (lo, hi) in enumerate(((x0, x1), (y0, y1))):
            below = p[:, dim] < lo
            above = p[:, dim] > hi
            p[below, dim] = 2 * lo - p[below, dim]
            p[above, dim] = 2 * hi - p[above, dim]
            np.clip(p[:, dim], lo, hi, out=p[:, dim])

    def effective_sample_size(self) -> float:
        return float(1.0 / (self._weights**2).sum())

    def _resample(self) -> None:
        """Systematic (low-variance) resampling."""
        n = self.n_particles
        positions = (self._rng.random() + np.arange(n)) / n
        cumulative = np.cumsum(self._weights)
        cumulative[-1] = 1.0
        idx = np.searchsorted(cumulative, positions)
        self._particles = self._particles[idx]
        self._weights = np.full(n, 1.0 / n)

    def step(self, observation: Observation, dt_s: float = 1.0) -> LocationEstimate:
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        # Motion: isotropic random walk.
        scale = self.speed_ft_s * dt_s
        self._particles = self._particles + self._rng.normal(0.0, scale, self._particles.shape)
        self._reflect()

        # Emission: Gaussian around the interpolated radio map.
        rssi = observation.mean_rssi()
        heard = np.isfinite(rssi)
        if heard.any():
            expected = self.field.expected_rssi(self._particles)  # (n, A)
            z = (rssi[None, heard] - expected[:, heard]) / self.field.sigma_db[None, heard]
            loglik = -0.5 * (z**2).sum(axis=1)
            loglik -= loglik.max()
            self._weights = self._weights * np.exp(loglik)
            total = self._weights.sum()
            if total <= 0 or not np.isfinite(total):
                obs.counter("tracking.degenerate_updates", tracker="particle").inc()
                self._weights = np.full(self.n_particles, 1.0 / self.n_particles)
            else:
                self._weights /= total
            if self.effective_sample_size() < self.n_particles / 2:
                self._resample()

        mean = (self._particles * self._weights[:, None]).sum(axis=0)
        spread = float(
            np.sqrt(
                (self._weights * ((self._particles - mean) ** 2).sum(axis=1)).sum()
            )
        )
        return LocationEstimate(
            position=Point(float(mean[0]), float(mean[1])),
            score=-spread,
            valid=bool(heard.any()),
            details={"ess": self.effective_sample_size(), "spread_ft": spread},
        )
