"""Temporal tracking filters (paper future work §6.2).

"We will borrow the idea of some client-tracking algorithm, which use
the combination of the historical location value and the current signal
strength value to derive the current location.  Moreover, we will use
more powerful statistic tool, such as Bayesian-filter, to facilitate
the estimation."

Three trackers, all sharing the :class:`~repro.algorithms.tracking.base.Tracker`
step interface (feed one observation per scan period, read an estimate):

* :class:`~repro.algorithms.tracking.bayes.DiscreteBayesTracker` —
  exact Bayes filter over the training points, with a distance-kernel
  motion model; emissions from any localizer exposing
  ``log_likelihoods`` (probabilistic or histogram).
* :class:`~repro.algorithms.tracking.kalman.KalmanTracker` — constant
  velocity Kalman filter smoothing any static localizer's positional
  estimates (the ref [18] idea).
* :class:`~repro.algorithms.tracking.particle.ParticleFilterTracker` —
  sequential Monte Carlo in continuous floor coordinates with an
  interpolated RSSI field as the emission model.
"""

from repro.algorithms.tracking.base import Tracker
from repro.algorithms.tracking.bayes import DiscreteBayesTracker
from repro.algorithms.tracking.kalman import KalmanTracker
from repro.algorithms.tracking.particle import ParticleFilterTracker, RSSIField

__all__ = [
    "Tracker",
    "DiscreteBayesTracker",
    "KalmanTracker",
    "ParticleFilterTracker",
    "RSSIField",
]
