"""Constant-velocity Kalman smoothing of static position estimates.

Ref [18] of the paper ("Improving the accuracy of WLAN based location
determination using Kalman filter and multiple observers") layers a
Kalman filter over a WLAN localizer; this is that layer.  The state is
``[x, y, vx, vy]`` with white-noise acceleration; the measurement is
whatever a wrapped static localizer answers for each observation (its
invalid answers are handled as missed measurements — predict only).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.algorithms.base import LocationEstimate, Localizer, Observation
from repro.algorithms.tracking.base import Tracker
from repro.core.geometry import Point


def _raw_fix(measurement: LocationEstimate) -> dict:
    """JSON-safe summary of the static localizer's fix: plain floats only."""
    score = measurement.score
    if score is not None:
        score = float(score)
        if not math.isfinite(score):
            score = None
    raw = {
        "valid": bool(measurement.valid),
        "x": None,
        "y": None,
        "location_name": measurement.location_name,
        "score": score,
    }
    if measurement.position is not None:
        raw["x"] = float(measurement.position.x)
        raw["y"] = float(measurement.position.y)
    return raw


class KalmanTracker(Tracker):
    """CV-model Kalman filter over a static localizer's outputs.

    Parameters
    ----------
    localizer:
        A **fitted** static localizer supplying position measurements.
    process_accel_ft_s2:
        White-acceleration σ of the motion model (how hard the target
        can maneuver).
    measurement_std_ft:
        σ of the localizer's positional error, the measurement noise.
    """

    def __init__(
        self,
        localizer: Localizer,
        process_accel_ft_s2: float = 2.0,
        measurement_std_ft: float = 8.0,
    ):
        if process_accel_ft_s2 <= 0 or measurement_std_ft <= 0:
            raise ValueError("process and measurement noise must be positive")
        self.localizer = localizer
        self.q_accel = float(process_accel_ft_s2)
        self.r_std = float(measurement_std_ft)
        self._x: Optional[np.ndarray] = None  # state [x, y, vx, vy]
        self._P: Optional[np.ndarray] = None
        self.reset()

    def reset(self) -> None:
        self._x = None
        self._P = None

    @staticmethod
    def _f_matrix(dt: float) -> np.ndarray:
        F = np.eye(4)
        F[0, 2] = dt
        F[1, 3] = dt
        return F

    def _q_matrix(self, dt: float) -> np.ndarray:
        # Discrete white-noise acceleration model.
        q = self.q_accel**2
        dt2, dt3, dt4 = dt * dt, dt**3, dt**4
        Q = np.zeros((4, 4))
        Q[0, 0] = Q[1, 1] = dt4 / 4 * q
        Q[0, 2] = Q[2, 0] = Q[1, 3] = Q[3, 1] = dt3 / 2 * q
        Q[2, 2] = Q[3, 3] = dt2 * q
        return Q

    _H = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0]])

    @property
    def measurement_localizer(self) -> Localizer:
        """The wrapped static localizer (the separable measurement pass)."""
        return self.localizer

    def rebind(self, localizer: Localizer) -> bool:
        """Swap the measurement localizer in place, keeping filter state.

        Hot-reload support for serving sessions: the state ``[x, y, vx,
        vy]`` and covariance survive a model swap (the track does not
        restart mid-walk); only future measurements come from the new
        model.  Returns True (the state was preserved).
        """
        self.localizer = localizer
        return True

    def measure(self, observation: Observation) -> LocationEstimate:
        """The measurement pass alone: one static fix for ``observation``."""
        return self.localizer.locate(observation)

    def step(self, observation: Observation, dt_s: float = 1.0) -> LocationEstimate:
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        return self.step_with_measurement(self.measure(observation), observation, dt_s)

    def step_with_measurement(
        self,
        measurement: LocationEstimate,
        observation: Observation,
        dt_s: float = 1.0,
    ) -> LocationEstimate:
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        z = (
            np.array([measurement.position.x, measurement.position.y])
            if measurement.valid and measurement.position is not None
            else None
        )

        if self._x is None:
            if z is None:
                # Nothing to initialize from yet.
                return LocationEstimate(position=None, valid=False, details={"reason": "no fix yet"})
            self._x = np.array([z[0], z[1], 0.0, 0.0])
            self._P = np.diag([self.r_std**2, self.r_std**2, 25.0, 25.0])
            return self._estimate(measurement)

        # Predict.
        F = self._f_matrix(dt_s)
        self._x = F @ self._x
        self._P = F @ self._P @ F.T + self._q_matrix(dt_s)

        # Update (if the static localizer produced a fix).
        if z is not None:
            H = self._H
            R = np.eye(2) * self.r_std**2
            y = z - H @ self._x
            S = H @ self._P @ H.T + R
            K = self._P @ H.T @ np.linalg.inv(S)
            self._x = self._x + K @ y
            self._P = (np.eye(4) - K @ H) @ self._P
        return self._estimate(measurement)

    def _estimate(self, measurement: LocationEstimate) -> LocationEstimate:
        pos = Point(float(self._x[0]), float(self._x[1]))
        return LocationEstimate(
            position=pos,
            location_name=measurement.location_name,
            score=-float(np.trace(self._P[:2, :2])),
            valid=True,
            details={
                "velocity_ft_s": [float(self._x[2]), float(self._x[3])],
                "position_var_ft2": [float(self._P[0, 0]), float(self._P[1, 1])],
                # Wire-safe summary of the static fix this step fused (the
                # canonical JSON codec must be able to carry it; a nested
                # LocationEstimate full of numpy internals cannot ride).
                "raw": _raw_fix(measurement),
            },
        )

    # ------------------------------------------------------------------
    # offline smoothing (RTS)
    # ------------------------------------------------------------------
    def smooth(self, observations, dt_s: float = 1.0):
        """Rauch–Tung–Striebel smoothing over a complete track.

        The forward pass is the ordinary filter; the backward pass
        conditions every state on the *whole* observation sequence,
        which is the right estimator for post-hoc track analysis (the
        filter remains the right one for live tracking).  Returns a
        list of :class:`LocationEstimate` aligned with ``observations``;
        leading observations before the first fix come back invalid.
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        self.reset()
        # Forward pass, recording prior/posterior moments per step.
        posts_x, posts_P = [], []
        priors_x, priors_P = [], []
        fixed_from = None
        F = self._f_matrix(dt_s)
        Q = self._q_matrix(dt_s)
        for t, obs in enumerate(observations):
            pre_x = None if self._x is None else self._x.copy()
            self.step(obs, dt_s)
            if self._x is None:
                posts_x.append(None)
                posts_P.append(None)
                priors_x.append(None)
                priors_P.append(None)
                continue
            if fixed_from is None:
                fixed_from = t
                priors_x.append(self._x.copy())  # initialization step
                priors_P.append(self._P.copy())
            else:
                priors_x.append(F @ pre_x)
                priors_P.append(F @ posts_P[-1] @ F.T + Q)
            posts_x.append(self._x.copy())
            posts_P.append(self._P.copy())

        n = len(observations)
        out = [
            LocationEstimate(position=None, valid=False, details={"reason": "no fix yet"})
        ] * n
        if fixed_from is None:
            return out
        # Backward pass.
        sx = [None] * n
        sP = [None] * n
        sx[n - 1], sP[n - 1] = posts_x[n - 1], posts_P[n - 1]
        for t in range(n - 2, fixed_from - 1, -1):
            pred_x = priors_x[t + 1]
            pred_P = priors_P[t + 1]
            gain = posts_P[t] @ F.T @ np.linalg.inv(pred_P)
            sx[t] = posts_x[t] + gain @ (sx[t + 1] - pred_x)
            sP[t] = posts_P[t] + gain @ (sP[t + 1] - pred_P) @ gain.T
        for t in range(fixed_from, n):
            out[t] = LocationEstimate(
                position=Point(float(sx[t][0]), float(sx[t][1])),
                score=-float(np.trace(sP[t][:2, :2])),
                valid=True,
                details={
                    "velocity_ft_s": [float(sx[t][2]), float(sx[t][3])],
                    "smoothed": True,
                },
            )
        return out
