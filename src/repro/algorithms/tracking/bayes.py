"""Exact discrete Bayes filter over the training points.

State space = the training points (the §5.1 answer vocabulary), prior =
uniform, motion model = a distance kernel: from point *i* the client
moves to point *j* with probability ∝ exp(−d(i,j)²/2(v·Δt)²) + a small
uniform teleport mass (kidnapped-robot recovery).  Emissions come from
any fitted localizer exposing ``log_likelihoods(observation)`` — the
probabilistic (§5.1) and histogram (§6.2) models both qualify, so the
filter literally implements the paper's plan of combining "the
historical location value and the current signal strength value".
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro import obs
from repro.algorithms.base import LocationEstimate, Observation
from repro.algorithms.histogram import HistogramLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.tracking.base import Tracker
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase

EmissionModel = Union[ProbabilisticLocalizer, HistogramLocalizer]


class DiscreteBayesTracker(Tracker):
    """Grid Bayes filter with Gaussian-kernel motion over training points.

    Parameters
    ----------
    emission:
        A **fitted** localizer with ``log_likelihoods``.
    db:
        The training database (defines the state grid; must be the one
        the emission model was fitted on).
    speed_ft_s:
        Prior walking speed scale for the motion kernel.
    teleport:
        Uniform mixture mass added to every transition row, bounding
        how confidently the filter can lock onto a wrong point.
    """

    def __init__(
        self,
        emission: EmissionModel,
        db: TrainingDatabase,
        speed_ft_s: float = 4.0,
        teleport: float = 0.02,
    ):
        if not hasattr(emission, "log_likelihoods"):
            raise TypeError(
                f"emission model {type(emission).__name__} lacks log_likelihoods()"
            )
        if speed_ft_s <= 0:
            raise ValueError(f"speed must be positive, got {speed_ft_s}")
        if not 0.0 <= teleport < 1.0:
            raise ValueError(f"teleport must be in [0, 1), got {teleport}")
        self.emission = emission
        self.db = db
        self.speed_ft_s = float(speed_ft_s)
        self.teleport = float(teleport)
        self._positions = db.positions()
        n = len(db)
        diff = self._positions[:, None, :] - self._positions[None, :, :]
        self._pair_d2 = (diff**2).sum(axis=2)
        self._belief: Optional[np.ndarray] = None
        self.reset()

    def reset(self) -> None:
        n = len(self.db)
        self._belief = np.full(n, 1.0 / n)

    def _transition(self, dt_s: float) -> np.ndarray:
        """Row-stochastic motion kernel for a Δt step."""
        scale = max(self.speed_ft_s * dt_s, 1e-6)
        kernel = np.exp(-self._pair_d2 / (2.0 * scale * scale))
        kernel /= kernel.sum(axis=1, keepdims=True)
        n = kernel.shape[0]
        return (1.0 - self.teleport) * kernel + self.teleport / n

    @property
    def belief(self) -> np.ndarray:
        """Current posterior over training points."""
        return self._belief.copy()

    def rebind(self, emission: EmissionModel, db: Optional[TrainingDatabase] = None) -> bool:
        """Swap the emission model (and optionally the state grid) in place.

        Hot-reload support for serving sessions.  With the same (or a
        same-size) grid the belief carries over — the track survives the
        model swap; a grid of a *different* size has no belief mapping,
        so the filter resets to uniform.  Returns True iff the belief
        was preserved.
        """
        if not hasattr(emission, "log_likelihoods"):
            raise TypeError(
                f"emission model {type(emission).__name__} lacks log_likelihoods()"
            )
        self.emission = emission
        if db is None or db is self.db:
            return True
        kept = len(db) == len(self.db)
        self.db = db
        self._positions = db.positions()
        diff = self._positions[:, None, :] - self._positions[None, :, :]
        self._pair_d2 = (diff**2).sum(axis=2)
        if not kept:
            self.reset()
        return kept

    @property
    def emission_localizer(self):
        """The emission model, when it supports the batched matrix pass.

        Only emissions exposing ``log_likelihood_matrix`` (whose rows
        are bit-identical to per-observation ``log_likelihoods`` — the
        probabilistic model guarantees this) qualify; others step
        serially.
        """
        if hasattr(self.emission, "log_likelihood_matrix"):
            return self.emission
        return None

    def step(self, observation: Observation, dt_s: float = 1.0) -> LocationEstimate:
        return self._step(observation, dt_s, None)

    def step_with_loglik(
        self, loglik, observation: Observation, dt_s: float = 1.0
    ) -> LocationEstimate:
        return self._step(observation, dt_s, np.asarray(loglik, dtype=float))

    def _step(
        self, observation: Observation, dt_s: float, ll: Optional[np.ndarray]
    ) -> LocationEstimate:
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        # Predict.
        predicted = self._belief @ self._transition(dt_s)
        predicted = predicted / predicted.sum()  # renormalize fp drift
        if not bool(np.isfinite(observation.mean_rssi()).any()):
            # Zero evidence (nothing heard): the update is a no-op, so
            # this is a predict-only step and — matching the particle
            # and Kalman trackers — not a valid fix.  A precomputed
            # emission row is ignored here, exactly as step() never
            # computes one.
            self._belief = predicted
            return self._estimate(valid=False, reason="no APs heard")
        # Update.
        if ll is None:
            ll = np.asarray(self.emission.log_likelihoods(observation), dtype=float)
        finite = np.isfinite(ll)
        if not finite.any():
            # Degenerate emission (zero probability everywhere, e.g. a
            # histogram model off its support): ``ll - ll.max()`` would
            # be NaN and poison the belief permanently.  Keep the
            # predicted belief instead.
            obs.counter("tracking.degenerate_updates", tracker="bayes").inc()
            self._belief = predicted
            return self._estimate(degenerate=True)
        lik = np.where(finite, np.exp(np.where(finite, ll - ll[finite].max(), 0.0)), 0.0)
        belief = predicted * lik
        total = belief.sum()
        if total <= 0 or not np.isfinite(total):
            # Kidnapped-robot fallback: the prediction has no mass where
            # the emission does — trust the emission alone.
            belief = lik
            total = belief.sum()
        if total <= 0 or not np.isfinite(total):
            obs.counter("tracking.degenerate_updates", tracker="bayes").inc()
            self._belief = predicted
            return self._estimate(degenerate=True)
        self._belief = belief / total
        return self._estimate()

    def _estimate(
        self, valid: bool = True, degenerate: bool = False, reason: Optional[str] = None
    ) -> LocationEstimate:
        best = int(np.argmax(self._belief))
        record = self.db.records[best]
        mean_xy = (self._positions * self._belief[:, None]).sum(axis=0)
        p = self._belief
        nz = p[p > 0]
        top = np.argsort(p)[::-1][: min(3, len(p))]
        # Wire-safe posterior summary (entropy + top-k), not the raw
        # numpy array — session responses carry these details as JSON.
        details = {
            "map_point": record.name,
            "posterior_entropy": float(-(nz * np.log(nz)).sum()),
            "top_k": [
                {"point": self.db.records[int(i)].name, "p": float(p[int(i)])}
                for i in top
            ],
        }
        if degenerate:
            details["degenerate_update"] = True
        if reason is not None:
            details["reason"] = reason
        return LocationEstimate(
            position=Point(float(mean_xy[0]), float(mean_xy[1])),
            location_name=record.name,
            score=float(p[best]),
            valid=valid,
            details=details,
        )
