"""The tracker interface: a stateful stream of observations."""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.base import LocationEstimate, Localizer, Observation


class Tracker(abc.ABC):
    """Sequential estimator: one :meth:`step` per scan period.

    Unlike a :class:`~repro.algorithms.base.Localizer`, a tracker owns
    state between observations — "the combination of the historical
    location value and the current signal strength value" (§6.2).

    Trackers whose measurement pass is a static localizer call (the
    Kalman filter) additionally expose the *measurement split*:
    :attr:`measurement_localizer` names the localizer and
    :meth:`step_with_measurement` folds in a measurement computed
    elsewhere.  The serving layer uses the split to coalesce many
    concurrent session steps into **one** vectorized ``locate_many``
    pass instead of N scalar ``locate`` calls; ``step(obs)`` must stay
    equivalent to ``step_with_measurement(measurement_localizer.
    locate(obs), obs)`` so batched and unbatched tracks agree exactly.
    """

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all history (start of a new track)."""

    @abc.abstractmethod
    def step(self, observation: Observation, dt_s: float = 1.0) -> LocationEstimate:
        """Fold in one observation taken ``dt_s`` after the previous one."""

    @property
    def measurement_localizer(self) -> Optional[Localizer]:
        """The localizer whose ``locate`` answers are this tracker's
        measurements, or None when the filter has no separable
        measurement pass (callers then use :meth:`step` directly)."""
        return None

    @property
    def emission_localizer(self):
        """The emission model whose per-state log-likelihood row is
        this tracker's update input, or None when the filter has no
        separable emission pass.

        The grid-Bayes analogue of :attr:`measurement_localizer`: an
        object exposing ``log_likelihood_matrix(observations)`` whose
        row ``k`` is bit-identical to ``log_likelihoods(observations
        [k])``, so the serving layer can compute one matrix for a whole
        batch of sessions and feed each row to
        :meth:`step_with_loglik`.
        """
        return None

    def step_with_loglik(
        self,
        loglik,
        observation: Observation,
        dt_s: float = 1.0,
    ) -> LocationEstimate:
        """Fold in one observation whose emission row is already computed.

        ``loglik`` must be ``emission_localizer.log_likelihoods(
        observation)`` (or one row of the equivalent matrix).  Must
        stay bit-equivalent to :meth:`step`; only meaningful on
        trackers that report an :attr:`emission_localizer`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no separable emission pass"
        )

    def step_with_measurement(
        self,
        measurement: LocationEstimate,
        observation: Observation,
        dt_s: float = 1.0,
    ) -> LocationEstimate:
        """Fold in one observation whose measurement is already computed.

        ``measurement`` must be ``measurement_localizer.locate(observation)``
        (or one row of the equivalent ``locate_many``).  Only meaningful
        on trackers that report a :attr:`measurement_localizer`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no separable measurement pass"
        )

    def track(
        self, observations: Sequence[Observation], dt_s: float = 1.0
    ) -> List[LocationEstimate]:
        """Run a whole observation stream through a fresh filter."""
        self.reset()
        return [self.step(obs, dt_s) for obs in observations]
