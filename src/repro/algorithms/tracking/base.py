"""The tracker interface: a stateful stream of observations."""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

from repro.algorithms.base import LocationEstimate, Observation


class Tracker(abc.ABC):
    """Sequential estimator: one :meth:`step` per scan period.

    Unlike a :class:`~repro.algorithms.base.Localizer`, a tracker owns
    state between observations — "the combination of the historical
    location value and the current signal strength value" (§6.2).
    """

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all history (start of a new track)."""

    @abc.abstractmethod
    def step(self, observation: Observation, dt_s: float = 1.0) -> LocationEstimate:
        """Fold in one observation taken ``dt_s`` after the previous one."""

    def track(
        self, observations: Sequence[Observation], dt_s: float = 1.0
    ) -> List[LocationEstimate]:
        """Run a whole observation stream through a fresh filter."""
        self.reset()
        return [self.step(obs, dt_s) for obs in observations]
