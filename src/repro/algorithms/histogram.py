"""Histogram-Bayes fingerprinting (the §6.2 "distribution" extension).

The paper's future work: "Our new algorithm will consider the
distribution of these values" instead of "only the average signal
strength value".  The standard way to do that (Youssef's Horus family)
is a nonparametric per-``<training point, AP>`` histogram of RSSI used
as the emission probability, with Laplace smoothing so unseen bins keep
finite likelihood.  Each *sweep* of the observation is scored
independently and log-likelihoods sum over sweeps and APs — the full
distribution of the observation window participates, not just its mean.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.trainingdb import TrainingDatabase


@register_algorithm("histogram")
class HistogramLocalizer(Localizer):
    """Per-(location, AP) RSSI histograms as emission probabilities.

    Parameters
    ----------
    bin_width_db:
        Histogram bin width; RSSI is quantized hardware-side anyway so
        2 dB bins lose little.
    rssi_range:
        Histogram support (dBm).  Samples outside clamp to the edge bins.
    laplace:
        Additive smoothing mass per bin.
    absence_weight:
        Probability mass reserved for "AP not heard" as its own outcome,
        estimated from the training detection rate — presence itself is
        informative indoors.
    """

    def __init__(
        self,
        bin_width_db: float = 2.0,
        rssi_range: tuple = (-100.0, -20.0),
        laplace: float = 0.5,
        absence_weight: float = 1.0,
    ):
        if bin_width_db <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width_db}")
        if rssi_range[0] >= rssi_range[1]:
            raise ValueError(f"invalid RSSI range {rssi_range}")
        if laplace <= 0:
            raise ValueError(f"laplace smoothing must be positive, got {laplace}")
        self.bin_width_db = float(bin_width_db)
        self.rssi_range = (float(rssi_range[0]), float(rssi_range[1]))
        self.laplace = float(laplace)
        self.absence_weight = float(absence_weight)
        self._db: Optional[TrainingDatabase] = None
        self._log_pmf: Optional[np.ndarray] = None  # (L, A, n_bins)
        self._log_absence: Optional[np.ndarray] = None  # (L, A)
        self._log_presence: Optional[np.ndarray] = None  # (L, A)

    @property
    def n_bins(self) -> int:
        lo, hi = self.rssi_range
        return int(math.ceil((hi - lo) / self.bin_width_db))

    def _bin_of(self, rssi: np.ndarray) -> np.ndarray:
        lo, _ = self.rssi_range
        idx = np.floor((rssi - lo) / self.bin_width_db).astype(int)
        return np.clip(idx, 0, self.n_bins - 1)

    def fit(self, db: TrainingDatabase) -> "HistogramLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        L, A, B = len(db), len(db.bssids), self.n_bins
        counts = np.full((L, A, B), self.laplace)
        present = np.zeros((L, A))
        total = np.zeros((L, A))
        for li, rec in enumerate(db.records):
            samples = rec.samples  # (n, A)
            total[li] = samples.shape[0]
            for a in range(A):
                col = samples[:, a]
                heard = np.isfinite(col)
                present[li, a] = heard.sum()
                if heard.any():
                    bins = self._bin_of(col[heard])
                    np.add.at(counts[li, a], bins, 1.0)
        self._log_pmf = np.log(counts / counts.sum(axis=2, keepdims=True))
        # Presence/absence as a Bernoulli with Laplace smoothing.
        p_present = (present + self.absence_weight) / (total + 2.0 * self.absence_weight)
        self._log_presence = np.log(p_present)
        self._log_absence = np.log1p(-p_present)
        return self

    def _window_stats(self, observations):
        """Stack aligned windows into per-``(obs, AP)`` sufficient stats.

        Returns ``(counts (M, A, B), heard_n (M, A), missed_n (M, A))``
        — everything the histogram likelihood needs, gathered in one
        pass over the concatenated sweep rows (no per-AP Python loop).
        """
        A, B = self._log_pmf.shape[1], self.n_bins
        aligned = [self._aligned(o, self._db.bssids).samples for o in observations]
        for s in aligned:
            if s.shape[1] != A:
                raise ValueError(
                    f"observation has {s.shape[1]} AP columns, "
                    f"training had {A}"
                )
        M = len(aligned)
        n_sweeps = np.array([s.shape[0] for s in aligned])
        rows = np.vstack(aligned)  # (total_sweeps, A)
        heard = np.isfinite(rows)
        obs_id = np.repeat(np.arange(M), n_sweeps)
        # Bin every heard entry (unheard entries are parked at the range
        # floor so no NaN ever reaches the int cast, then masked out of
        # the scatter).
        bins = self._bin_of(np.where(heard, rows, self.rssi_range[0]))
        ap = np.broadcast_to(np.arange(A), rows.shape)
        flat_ap = obs_id[:, None] * A + ap  # (total_sweeps, A)
        counts = (
            np.bincount((flat_ap * B + bins)[heard], minlength=M * A * B)
            .astype(float)
            .reshape(M, A, B)
        )
        heard_n = (
            np.bincount(flat_ap[heard], minlength=M * A)
            .astype(float)
            .reshape(M, A)
        )
        missed_n = n_sweeps[:, None] - heard_n
        return counts, heard_n, missed_n

    def _ll_rows_from_stats(
        self, counts: np.ndarray, heard_n: np.ndarray, missed_n: np.ndarray
    ) -> np.ndarray:
        """Sufficient stats → ``(M, L)`` log-likelihoods.

        The one scoring expression both paths share; the contraction is
        a plain ``einsum`` (no BLAS), so each row is independent of its
        chunk-mates — bit-for-bit batch/single parity.
        """
        per_ap = np.einsum("mab,lab->mla", counts, self._log_pmf)
        per_ap += heard_n[:, None, :] * self._log_presence[None, :, :]
        per_ap += missed_n[:, None, :] * self._log_absence[None, :, :]
        return per_ap.sum(axis=2)

    def log_likelihoods(self, observation: Observation) -> np.ndarray:
        """Per-location log P(observation window | location)."""
        self._check_fitted("_log_pmf")
        return self._ll_rows_from_stats(*self._window_stats([observation]))[0].copy()

    def posterior(self, observation: Observation) -> np.ndarray:
        ll = self.log_likelihoods(observation)
        ll = ll - ll.max()
        p = np.exp(ll)
        return p / p.sum()

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_log_pmf")
        ll = self.log_likelihoods(observation)
        best = int(np.argmax(ll))
        record = self._db.records[best]
        valid = bool(np.isfinite(observation.samples).any())
        return LocationEstimate(
            position=record.position,
            location_name=record.name,
            score=float(ll[best]),
            valid=valid,
            details={"log_likelihoods": ll},
        )

    def _locate_chunk(self, observations):
        """Vectorized chunk kernel (identical answers to :meth:`locate`)."""
        self._check_fitted("_log_pmf")
        ll = self._ll_rows_from_stats(*self._window_stats(observations))  # (M, L)
        best = ll.argmax(axis=1)
        records = self._db.records
        out = []
        for m, observation in enumerate(observations):
            record = records[int(best[m])]
            out.append(
                LocationEstimate(
                    position=record.position,
                    location_name=record.name,
                    score=float(ll[m, best[m]]),
                    # Same raw-window check as locate: validity is about
                    # hearing anything at all, pre-alignment.
                    valid=bool(np.isfinite(observation.samples).any()),
                    details={"log_likelihoods": ll[m].copy()},
                )
            )
        return out
