"""Histogram-Bayes fingerprinting (the §6.2 "distribution" extension).

The paper's future work: "Our new algorithm will consider the
distribution of these values" instead of "only the average signal
strength value".  The standard way to do that (Youssef's Horus family)
is a nonparametric per-``<training point, AP>`` histogram of RSSI used
as the emission probability, with Laplace smoothing so unseen bins keep
finite likelihood.  Each *sweep* of the observation is scored
independently and log-likelihoods sum over sweeps and APs — the full
distribution of the observation window participates, not just its mean.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    register_algorithm,
)
from repro.core.trainingdb import TrainingDatabase


@register_algorithm("histogram")
class HistogramLocalizer(Localizer):
    """Per-(location, AP) RSSI histograms as emission probabilities.

    Parameters
    ----------
    bin_width_db:
        Histogram bin width; RSSI is quantized hardware-side anyway so
        2 dB bins lose little.
    rssi_range:
        Histogram support (dBm).  Samples outside clamp to the edge bins.
    laplace:
        Additive smoothing mass per bin.
    absence_weight:
        Probability mass reserved for "AP not heard" as its own outcome,
        estimated from the training detection rate — presence itself is
        informative indoors.
    """

    def __init__(
        self,
        bin_width_db: float = 2.0,
        rssi_range: tuple = (-100.0, -20.0),
        laplace: float = 0.5,
        absence_weight: float = 1.0,
    ):
        if bin_width_db <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width_db}")
        if rssi_range[0] >= rssi_range[1]:
            raise ValueError(f"invalid RSSI range {rssi_range}")
        if laplace <= 0:
            raise ValueError(f"laplace smoothing must be positive, got {laplace}")
        self.bin_width_db = float(bin_width_db)
        self.rssi_range = (float(rssi_range[0]), float(rssi_range[1]))
        self.laplace = float(laplace)
        self.absence_weight = float(absence_weight)
        self._db: Optional[TrainingDatabase] = None
        self._log_pmf: Optional[np.ndarray] = None  # (L, A, n_bins)
        self._log_absence: Optional[np.ndarray] = None  # (L, A)
        self._log_presence: Optional[np.ndarray] = None  # (L, A)

    @property
    def n_bins(self) -> int:
        lo, hi = self.rssi_range
        return int(math.ceil((hi - lo) / self.bin_width_db))

    def _bin_of(self, rssi: np.ndarray) -> np.ndarray:
        lo, _ = self.rssi_range
        idx = np.floor((rssi - lo) / self.bin_width_db).astype(int)
        return np.clip(idx, 0, self.n_bins - 1)

    def fit(self, db: TrainingDatabase) -> "HistogramLocalizer":
        if len(db) == 0:
            raise ValueError("training database has no locations")
        self._db = db
        L, A, B = len(db), len(db.bssids), self.n_bins
        counts = np.full((L, A, B), self.laplace)
        present = np.zeros((L, A))
        total = np.zeros((L, A))
        for li, rec in enumerate(db.records):
            samples = rec.samples  # (n, A)
            total[li] = samples.shape[0]
            for a in range(A):
                col = samples[:, a]
                heard = np.isfinite(col)
                present[li, a] = heard.sum()
                if heard.any():
                    bins = self._bin_of(col[heard])
                    np.add.at(counts[li, a], bins, 1.0)
        self._log_pmf = np.log(counts / counts.sum(axis=2, keepdims=True))
        # Presence/absence as a Bernoulli with Laplace smoothing.
        p_present = (present + self.absence_weight) / (total + 2.0 * self.absence_weight)
        self._log_presence = np.log(p_present)
        self._log_absence = np.log1p(-p_present)
        return self

    def log_likelihoods(self, observation: Observation) -> np.ndarray:
        """Per-location log P(observation window | location)."""
        self._check_fitted("_log_pmf")
        observation = self._aligned(observation, self._db.bssids)
        samples = observation.samples  # (n, A)
        if samples.shape[1] != self._log_pmf.shape[1]:
            raise ValueError(
                f"observation has {samples.shape[1]} AP columns, "
                f"training had {self._log_pmf.shape[1]}"
            )
        L = self._log_pmf.shape[0]
        out = np.zeros(L)
        heard = np.isfinite(samples)
        for a in range(samples.shape[1]):
            col = samples[:, a]
            h = heard[:, a]
            n_heard = int(h.sum())
            n_missed = col.shape[0] - n_heard
            if n_heard:
                bins = self._bin_of(col[h])
                # (L, n_heard) gather then sum over sweeps
                out += self._log_pmf[:, a, :][:, bins].sum(axis=1)
                out += n_heard * self._log_presence[:, a]
            if n_missed:
                out += n_missed * self._log_absence[:, a]
        return out

    def posterior(self, observation: Observation) -> np.ndarray:
        ll = self.log_likelihoods(observation)
        ll = ll - ll.max()
        p = np.exp(ll)
        return p / p.sum()

    def locate(self, observation: Observation) -> LocationEstimate:
        self._check_fitted("_log_pmf")
        ll = self.log_likelihoods(observation)
        best = int(np.argmax(ll))
        record = self._db.records[best]
        valid = bool(np.isfinite(observation.samples).any())
        return LocationEstimate(
            position=record.position,
            location_name=record.name,
            score=float(ll[best]),
            valid=valid,
            details={"log_likelihoods": ll},
        )
