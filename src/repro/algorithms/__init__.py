"""Localization algorithms.

The paper's two evaluated approaches plus the baselines and extensions
its related-work and future-work sections call for:

* :mod:`repro.algorithms.probabilistic` — §5.1 Gaussian maximum
  likelihood against training points (the paper's headline method).
* :mod:`repro.algorithms.geometric` — §5.2 inverse-square regression,
  circle intersections, median point.
* :mod:`repro.algorithms.knn` — RADAR-style nearest neighbour(s) in
  signal space (the classic fingerprinting baseline, ref [15]).
* :mod:`repro.algorithms.histogram` — histogram Bayes fingerprinting
  (the "consider the distribution" future-work item, §6.2).
* :mod:`repro.algorithms.multilateration` — linear least-squares
  multilateration (the GPS/Cricket machinery, §2.4; also the solver the
  UWB extension uses).
* :mod:`repro.algorithms.sector` — identifying-code sector approach
  (§2.2, ref [22]).
* :mod:`repro.algorithms.scene` — scene-analysis landmark matching
  (§2.1), simplified to signature matching.
* :mod:`repro.algorithms.rank` — Spearman rank matching, invariant to
  per-device monotone RSSI distortion (pairs with
  :mod:`repro.radio.device`).
* :mod:`repro.algorithms.fieldmle` — continuous-space ML over an
  interpolated radio map (the §6.2 "finer-grained" processing).
* :mod:`repro.algorithms.tracking` — §6.2 temporal filters (discrete
  Bayes, Kalman, particle) layered over any static localizer.
* :mod:`repro.algorithms.fallback` — degraded-mode tiered chain
  (geometric → probabilistic → nearest training point) with per-request
  decline diagnostics; see docs/robustness.md.

Every algorithm implements the :class:`~repro.algorithms.base.Localizer`
interface: ``fit(TrainingDatabase)`` then ``locate(Observation)``.
"""

from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    available_algorithms,
    invalid_estimate,
    make_localizer,
    register_algorithm,
)
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.geometric import GeometricLocalizer
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.histogram import HistogramLocalizer
from repro.algorithms.multilateration import MultilaterationLocalizer
from repro.algorithms.sector import SectorLocalizer
from repro.algorithms.scene import SceneAnalysisLocalizer
from repro.algorithms.rank import RankLocalizer
from repro.algorithms.fieldmle import FieldMLELocalizer
from repro.algorithms.fallback import FallbackLocalizer

__all__ = [
    "LocationEstimate",
    "Localizer",
    "Observation",
    "available_algorithms",
    "invalid_estimate",
    "make_localizer",
    "register_algorithm",
    "ProbabilisticLocalizer",
    "GeometricLocalizer",
    "KNNLocalizer",
    "HistogramLocalizer",
    "MultilaterationLocalizer",
    "SectorLocalizer",
    "SceneAnalysisLocalizer",
    "RankLocalizer",
    "FieldMLELocalizer",
    "FallbackLocalizer",
]
