#!/usr/bin/env python
"""BENCH-SERVE-MP — multi-process serving vs one worker, plus pack sharing.

The ``--workers N`` acceptance bench, run as a script (it forks real
CLI server processes, so it lives outside the pytest bench tier)::

    PYTHONPATH=src python benchmarks/bench_serve_mp.py

Two runs of the same closed-loop ``/v1/locate`` load (the shared
``loadgen`` client) against ``repro serve <pack> --workers W``:

* ``workers=1`` — the single-process ceiling: every request contends
  for one GIL no matter how many handler threads run.
* ``workers=N`` — the prefork fleet on one ``SO_REUSEPORT`` port.

Alongside throughput it measures what the frozen pack buys: each
worker's ``/proc/<pid>/smaps`` entries for the ``.tdbx`` mapping.  Rss
is what the process touched; Pss divides shared pages by their mapping
count, so the fleet-wide model cost is the **sum of Pss** — with mmap
sharing it stays near one copy (ratio ≤ 1.25), where pickled/heap
models would pay N full copies.

Floors: combined-Pss ratio always; the ≥ 3x throughput speedup only on
≥ 4 cores (a 1-2 core runner cannot express parallel speedup — the
result is still recorded, gating is skipped).  Results land in
``benchmarks/results/BENCH_SERVE_MP.json`` for
``check_perf_regression.py`` and the committed baseline.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # loadgen, same as conftest

from loadgen import observation_doc, run_load, summarize  # noqa: E402

from repro.experiments.house import ExperimentHouse, HouseConfig  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

N_CLIENTS = 16
REQUESTS_PER_CLIENT = 40
WARMUP_PER_CLIENT = 3

MIN_SPEEDUP = 3.0  # enforced only on >= SPEEDUP_MIN_CORES cores
SPEEDUP_MIN_CORES = 4
MAX_SHARING_RATIO = 1.25  # combined pack Pss vs one worker's Rss

_LAUNCHER = [
    sys.executable,
    "-c",
    "import sys; from repro.cli import repro_main; sys.exit(repro_main(sys.argv[1:]))",
]


def pack_mapping_kb(pid: int, pack_path: str) -> dict:
    """Sum Rss/Pss (kB) of a process's mappings of the pack file."""
    rss = pss = 0
    current = False
    try:
        with open(f"/proc/{pid}/smaps", "r", encoding="utf-8") as fh:
            for line in fh:
                if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ", 1)[0]:
                    current = line.rstrip("\n").endswith(pack_path)
                elif current and line.startswith("Rss:"):
                    rss += int(line.split()[1])
                elif current and line.startswith("Pss:"):
                    pss += int(line.split()[1])
    except OSError:
        pass
    return {"rss_kb": rss, "pss_kb": pss}


def launch_fleet(pack: Path, workers: int, rundir: Path):
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        _LAUNCHER
        + [
            "serve",
            str(pack),
            "--port",
            "0",
            "--workers",
            str(workers),
            "--rundir",
            str(rundir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    url = None
    for line in proc.stdout:
        if line.startswith("serving "):
            url = line.split()[1]
        if "Ctrl-C to stop" in line:
            break
    if url is None:
        proc.kill()
        raise RuntimeError("serve never printed its banner")
    return proc, int(url.rsplit(":", 1)[1])


def drain_fleet(proc) -> str:
    proc.send_signal(signal.SIGTERM)
    tail, _ = proc.communicate(timeout=120)
    if proc.returncode != 0:
        raise RuntimeError(f"serve exited {proc.returncode}:\n{tail}")
    if "drain complete: unfinished=0" not in tail:
        raise RuntimeError(f"no clean drain line in:\n{tail}")
    return tail


def measure(pack: Path, workers: int, docs, scratch: Path) -> dict:
    rundir = scratch / f"run-{workers}"
    proc, port = launch_fleet(pack, workers, rundir)
    try:
        run_load(port, docs, N_CLIENTS, WARMUP_PER_CLIENT)
        wall, reports = run_load(port, docs, N_CLIENTS, REQUESTS_PER_CLIENT)
        if workers == 1:
            pids = [proc.pid]  # single-process path: the CLI is the server
        else:
            pids = [
                json.loads((rundir / f"worker-{i}.json").read_text())["pid"]
                for i in range(workers)
            ]
        mappings = [pack_mapping_kb(pid, str(pack)) for pid in pids]
    finally:
        drain_fleet(proc)
    result = summarize(f"workers-{workers}", wall, reports, workers=workers)
    bad = [r for r in reports if not r.ok]
    if bad:
        raise RuntimeError(
            f"workers={workers}: {len(bad)} failed requests "
            f"(budget {result['error_budget']})"
        )
    result["pack_mapping_kb"] = mappings
    return result


def main() -> int:
    cores = os.cpu_count() or 1
    fleet_size = max(2, min(4, cores))

    house = ExperimentHouse(HouseConfig())
    db = house.training_database(rng=0)
    docs = [
        observation_doc(o)
        for o in house.observe_all(house.test_points(), rng=5, dwell_s=5.0)
    ]
    with tempfile.TemporaryDirectory(prefix="bench-serve-mp-") as scratch_dir:
        scratch = Path(scratch_dir)
        pack = scratch / "model.tdbx"
        pack_bytes = db.freeze(pack, ap_positions=house.ap_positions_by_bssid())

        single = measure(pack, 1, docs, scratch)
        multi = measure(pack, fleet_size, docs, scratch)

    speedup = multi["rps"] / single["rps"]
    single_rss = max(single["pack_mapping_kb"][0]["rss_kb"], 1)
    combined_pss = sum(m["pss_kb"] for m in multi["pack_mapping_kb"])
    sharing_ratio = combined_pss / single_rss

    doc = {
        "bench": "serve_mp",
        "cores": cores,
        "workers": fleet_size,
        "pack_bytes": pack_bytes,
        "single": single,
        "multi": multi,
        "speedup": round(speedup, 3),
        "pack_sharing": {
            "single_worker_rss_kb": single_rss,
            "fleet_combined_pss_kb": combined_pss,
            "ratio": round(sharing_ratio, 3),
        },
        "floors": {
            "speedup": MIN_SPEEDUP,
            "speedup_min_cores": SPEEDUP_MIN_CORES,
            "sharing_ratio": MAX_SHARING_RATIO,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_SERVE_MP.json"
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    print(
        f"BENCH-SERVE-MP: {cores} cores, fleet of {fleet_size}\n"
        f"  workers=1           {single['rps']:>8.1f} req/s  "
        f"p99 {single['p99_ms']:.1f} ms\n"
        f"  workers={fleet_size}           {multi['rps']:>8.1f} req/s  "
        f"p99 {multi['p99_ms']:.1f} ms\n"
        f"  speedup             {speedup:.2f}x "
        f"(floor {MIN_SPEEDUP}x on >= {SPEEDUP_MIN_CORES} cores)\n"
        f"  pack sharing        one copy {single_rss} kB, fleet Pss "
        f"{combined_pss} kB -> ratio {sharing_ratio:.2f} "
        f"(ceiling {MAX_SHARING_RATIO})\n"
        f"  -> {out}"
    )

    failures = []
    if sharing_ratio > MAX_SHARING_RATIO:
        failures.append(
            f"pack sharing ratio {sharing_ratio:.2f} exceeds {MAX_SHARING_RATIO} "
            f"— the fleet is paying for multiple model copies"
        )
    if cores >= SPEEDUP_MIN_CORES and speedup < MIN_SPEEDUP:
        failures.append(
            f"multi-worker speedup {speedup:.2f}x below {MIN_SPEEDUP}x "
            f"on a {cores}-core machine"
        )
    elif cores < SPEEDUP_MIN_CORES:
        print(
            f"  note: {cores} cores < {SPEEDUP_MIN_CORES} — speedup floor "
            f"not enforced (recorded only)"
        )
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
