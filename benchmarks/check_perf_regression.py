#!/usr/bin/env python
"""Compare a perf bench run against its committed baseline.

Usage::

    python benchmarks/check_perf_regression.py \
        benchmarks/results/BENCH_PERF.json [benchmarks/BENCH_PERF_BASELINE.json]
    python benchmarks/check_perf_regression.py \
        benchmarks/results/BENCH_SERVE_MP.json [benchmarks/BENCH_SERVE_MP_BASELINE.json]

The schema is sniffed from the result document:

* **PERF-BATCH** (``localizers`` key): exits non-zero when any
  localizer's loop→batch **speedup** dropped more than ``TOLERANCE``
  below the baseline.  Speedups are self-normalizing — both the loop
  and batch paths run on the same machine in the same process — so the
  comparison is stable across CI runner generations, unlike absolute
  milliseconds.  Localizers that are new relative to the baseline pass
  (there is nothing to regress against); localizers that *disappeared*
  fail, because losing a vectorized path is the regression this gate
  exists to catch.
* **SERVE-MP** (``bench == "serve_mp"``): the pack-sharing ceiling is
  enforced on every machine (mmap sharing does not depend on core
  count); the multi-worker throughput floor — and the baseline
  comparison — only on machines with enough cores to express parallel
  speedup at all.
* **SITES** (``bench == "sites"``): the fleet-registry floors — warm
  cache-hit throughput and the hot-p99-under-churn ratio — plus a
  baseline comparison on throughput when a baseline is committed.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Fractional speedup loss allowed before the gate trips (20%).
TOLERANCE = 0.20


def check(current_path: Path, baseline_path: Path) -> int:
    current = json.loads(current_path.read_text(encoding="utf-8"))["localizers"]
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))["localizers"]

    failures = []
    rows = []
    for name, base in sorted(baseline.items()):
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but missing from this run")
            continue
        floor = base["speedup"] * (1.0 - TOLERANCE)
        status = "ok" if now["speedup"] >= floor else "REGRESSED"
        rows.append(
            f"  {name:<18s} baseline {base['speedup']:6.2f}x  "
            f"now {now['speedup']:6.2f}x  floor {floor:6.2f}x  {status}"
        )
        if now["speedup"] < floor:
            failures.append(
                f"{name}: speedup {now['speedup']:.2f}x fell more than "
                f"{TOLERANCE:.0%} below baseline {base['speedup']:.2f}x"
            )
    for name in sorted(set(current) - set(baseline)):
        rows.append(f"  {name:<18s} new (no baseline) — passes")

    print("PERF-BATCH regression check (tolerance {:.0%}):".format(TOLERANCE))
    print("\n".join(rows))
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: no localizer regressed.")
    return 0


def check_serve_mp(current_path: Path, baseline_path: Path) -> int:
    current = json.loads(current_path.read_text(encoding="utf-8"))
    baseline = (
        json.loads(baseline_path.read_text(encoding="utf-8"))
        if baseline_path.is_file()
        else None
    )
    floors = current["floors"]
    cores = int(current["cores"])
    min_cores = int(floors["speedup_min_cores"])
    ratio = float(current["pack_sharing"]["ratio"])
    speedup = float(current["speedup"])

    failures = []
    print(f"SERVE-MP regression check ({cores} cores, {current['workers']} workers):")
    status = "ok" if ratio <= floors["sharing_ratio"] else "REGRESSED"
    print(
        f"  pack sharing ratio  {ratio:6.2f}  "
        f"ceiling {floors['sharing_ratio']:.2f}  {status}"
    )
    if ratio > floors["sharing_ratio"]:
        failures.append(
            f"pack sharing ratio {ratio:.2f} exceeds {floors['sharing_ratio']} — "
            f"workers are paying for private model copies"
        )
    if cores >= min_cores:
        status = "ok" if speedup >= floors["speedup"] else "REGRESSED"
        print(
            f"  mp speedup          {speedup:6.2f}x floor   "
            f"{floors['speedup']:.2f}x  {status}"
        )
        if speedup < floors["speedup"]:
            failures.append(
                f"multi-worker speedup {speedup:.2f}x below the "
                f"{floors['speedup']}x floor on a {cores}-core machine"
            )
        if baseline is not None and int(baseline.get("cores", 0)) >= min_cores:
            floor = float(baseline["speedup"]) * (1.0 - TOLERANCE)
            status = "ok" if speedup >= floor else "REGRESSED"
            print(
                f"  vs baseline         {speedup:6.2f}x floor   "
                f"{floor:.2f}x  {status}"
            )
            if speedup < floor:
                failures.append(
                    f"speedup {speedup:.2f}x fell more than {TOLERANCE:.0%} "
                    f"below baseline {baseline['speedup']:.2f}x"
                )
    else:
        print(
            f"  mp speedup          {speedup:6.2f}x recorded only "
            f"({cores} cores < {min_cores})"
        )
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: multi-process serving holds its floors.")
    return 0


def check_sites(current_path: Path, baseline_path: Path) -> int:
    current = json.loads(current_path.read_text(encoding="utf-8"))
    baseline = (
        json.loads(baseline_path.read_text(encoding="utf-8"))
        if baseline_path.is_file()
        else None
    )
    floors = current["floors"]
    warm_rps = float(current["warm"]["rps"])
    ratio = float(current["mixed_p99_ratio"])

    failures = []
    print(
        f"SITES regression check ({current['sites']} sites, "
        f"capacity {current['capacity']}, {current['hot_sites']} hot):"
    )
    status = "ok" if warm_rps >= floors["cache_hit_rps"] else "REGRESSED"
    print(
        f"  cache-hit rps       {warm_rps:6.1f}  "
        f"floor {floors['cache_hit_rps']:.1f}  {status}"
    )
    if warm_rps < floors["cache_hit_rps"]:
        failures.append(
            f"warm cache-hit throughput {warm_rps:.0f} req/s below the "
            f"{floors['cache_hit_rps']:.0f} req/s floor — the registry "
            f"fast path got expensive"
        )
    status = "ok" if ratio <= floors["mixed_p99_ratio"] else "REGRESSED"
    print(
        f"  p99 churn ratio     {ratio:6.2f}x "
        f"ceiling {floors['mixed_p99_ratio']:.2f}x  {status}"
    )
    if ratio > floors["mixed_p99_ratio"]:
        failures.append(
            f"hot-site p99 stretched {ratio:.2f}x under cold-site churn "
            f"(ceiling {floors['mixed_p99_ratio']}x) — model loads are "
            f"blocking the hot path"
        )
    if int(current["churn"]["evictions"]) < 1:
        failures.append("mixed phase forced no evictions — bench did not churn")
    if baseline is not None:
        base_rps = float(baseline["warm"]["rps"])
        floor = base_rps * (1.0 - TOLERANCE)
        status = "ok" if warm_rps >= floor else "REGRESSED"
        print(
            f"  vs baseline         {warm_rps:6.1f}  "
            f"floor {floor:.1f}  {status}"
        )
        if warm_rps < floor:
            failures.append(
                f"cache-hit throughput {warm_rps:.0f} req/s fell more than "
                f"{TOLERANCE:.0%} below baseline {base_rps:.0f} req/s"
            )
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: fleet serving holds its floors.")
    return 0


def main(argv) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__)
        return 2
    current = Path(argv[0])
    if not current.is_file():
        print(f"error: {current} not found")
        return 2
    doc = json.loads(current.read_text(encoding="utf-8"))
    if doc.get("bench") == "sites":
        baseline = (
            Path(argv[1])
            if len(argv) == 2
            else Path(__file__).parent / "BENCH_SITES_BASELINE.json"
        )
        return check_sites(current, baseline)
    if doc.get("bench") == "serve_mp":
        baseline = (
            Path(argv[1])
            if len(argv) == 2
            else Path(__file__).parent / "BENCH_SERVE_MP_BASELINE.json"
        )
        return check_serve_mp(current, baseline)
    baseline = (
        Path(argv[1])
        if len(argv) == 2
        else Path(__file__).parent / "BENCH_PERF_BASELINE.json"
    )
    if not baseline.is_file():
        print(f"error: {baseline} not found")
        return 2
    return check(current, baseline)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
