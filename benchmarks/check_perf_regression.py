#!/usr/bin/env python
"""Compare a PERF-BATCH run against the committed speedup baseline.

Usage::

    python benchmarks/check_perf_regression.py \
        benchmarks/results/BENCH_PERF.json [benchmarks/BENCH_PERF_BASELINE.json]

Exits non-zero when any localizer's loop→batch **speedup** dropped more
than ``TOLERANCE`` below the baseline.  Speedups are self-normalizing —
both the loop and batch paths run on the same machine in the same
process — so the comparison is stable across CI runner generations,
unlike absolute milliseconds.  Localizers that are new relative to the
baseline pass (there is nothing to regress against); localizers that
*disappeared* fail, because losing a vectorized path is the regression
this gate exists to catch.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Fractional speedup loss allowed before the gate trips (20%).
TOLERANCE = 0.20


def check(current_path: Path, baseline_path: Path) -> int:
    current = json.loads(current_path.read_text(encoding="utf-8"))["localizers"]
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))["localizers"]

    failures = []
    rows = []
    for name, base in sorted(baseline.items()):
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but missing from this run")
            continue
        floor = base["speedup"] * (1.0 - TOLERANCE)
        status = "ok" if now["speedup"] >= floor else "REGRESSED"
        rows.append(
            f"  {name:<18s} baseline {base['speedup']:6.2f}x  "
            f"now {now['speedup']:6.2f}x  floor {floor:6.2f}x  {status}"
        )
        if now["speedup"] < floor:
            failures.append(
                f"{name}: speedup {now['speedup']:.2f}x fell more than "
                f"{TOLERANCE:.0%} below baseline {base['speedup']:.2f}x"
            )
    for name in sorted(set(current) - set(baseline)):
        rows.append(f"  {name:<18s} new (no baseline) — passes")

    print("PERF-BATCH regression check (tolerance {:.0%}):".format(TOLERANCE))
    print("\n".join(rows))
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: no localizer regressed.")
    return 0


def main(argv) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__)
        return 2
    current = Path(argv[0])
    baseline = (
        Path(argv[1])
        if len(argv) == 2
        else Path(__file__).parent / "BENCH_PERF_BASELINE.json"
    )
    for p in (current, baseline):
        if not p.is_file():
            print(f"error: {p} not found")
            return 2
    return check(current, baseline)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
