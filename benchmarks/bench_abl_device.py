"""ABL-DEVICE — device heterogeneity: train on one NIC, query with another.

The paper's evaluation uses a single laptop, dodging a failure mode
every deployed fingerprinting system meets: RSSI scales are
vendor-defined, so a query device with a few dB of offset or a
different gain silently degrades dB-space matchers.  This bench trains
on the reference card and queries through a catalogue of distorted
cards, comparing the §5.1 probabilistic matcher and kNN against the
rank localizer (whose AP-ordering features are invariant to monotone
per-device distortion).

Expected shapes: dB-space matchers degrade sharply with offset/gain
distortion; the rank matcher is coarse but nearly flat across devices.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.algorithms.base import make_localizer
from repro.experiments.metrics import ExperimentMetrics
from repro.radio.device import DEVICE_CATALOGUE

ALGS = ("probabilistic", "knn", "rank")
DEVICES = ("reference", "optimistic", "pessimistic", "compressed", "noisy")


def run_matrix(house, training_db, test_points):
    localizers = {a: make_localizer(a).fit(training_db) for a in ALGS}
    results = {}
    for dev_name in DEVICES:
        device = DEVICE_CATALOGUE[dev_name]
        observations = house.observe_all(
            test_points, rng=1, device=None if dev_name == "reference" else device
        )
        for alg, loc in localizers.items():
            ests = [loc.locate(o) for o in observations]
            m = ExperimentMetrics.compute(test_points, ests, tolerance_ft=10.0)
            results[(dev_name, alg)] = m
    return results


def test_abl_device_heterogeneity(benchmark, house, training_db, test_points):
    results = benchmark.pedantic(
        run_matrix, args=(house, training_db, test_points), rounds=1, iterations=1
    )

    lines = ["Train on reference card, query through distorted cards"]
    lines.append(f"{'device':<14s}" + "".join(f"{a:>16s}" for a in ALGS) + "   (mean error, ft)")
    for dev in DEVICES:
        cells = "".join(f"{results[(dev, a)].mean_deviation_ft:>16.2f}" for a in ALGS)
        lines.append(f"{dev:<14s}{cells}")
    record("ABL-DEVICE", "\n".join(lines))

    # Shape 1: an 8-9 dB offset hurts the dB-space matchers badly.
    for alg in ("probabilistic", "knn"):
        ref = results[("reference", alg)].mean_deviation_ft
        off = results[("pessimistic", alg)].mean_deviation_ft
        assert off > ref * 1.5, f"{alg}: expected offset damage, got {ref:.1f}->{off:.1f}"
    # Shape 2: the rank matcher barely moves across monotone distortions.
    rank_errors = [
        results[(d, "rank")].mean_deviation_ft
        for d in ("reference", "optimistic", "pessimistic", "compressed")
    ]
    assert max(rank_errors) < min(rank_errors) * 1.6
    # Shape 3: under heavy distortion, rank beats the dB-space matchers.
    assert (
        results[("pessimistic", "rank")].mean_deviation_ft
        < results[("pessimistic", "probabilistic")].mean_deviation_ft
    )
