"""EXP5.1 — the probabilistic approach's valid-estimation rate.

Paper §5.1: "Using this approach, 60% observations end up with a valid
estimation." over 13 observation locations in the 50×40 ft house.

This bench runs the full §5 protocol (90 s dwell, 30-point grid, 13
scattered observations) several times with independent noise and
reports the valid-estimation rate (estimate within one 10-ft grid step
of the truth) alongside the paper's 60 %.  Timing covers Phase-2
localization of one observation (the per-query cost a deployed system
pays).
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.experiments.metrics import ExperimentMetrics
from repro.experiments.runner import run_protocol


def test_exp51_probabilistic_valid_rate(benchmark, house, training_db, observations, test_points):
    localizer = ProbabilisticLocalizer().fit(training_db)

    benchmark(localizer.locate, observations[0])

    # Headline number: average over several independent protocol runs.
    rates, deviations = [], []
    for seed in range(8):
        result = run_protocol("probabilistic", house=house, rng=seed)
        rates.append(result.metrics.valid_rate)
        deviations.append(result.metrics.mean_deviation_ft)
    rate = float(np.mean(rates))
    record(
        "EXP5.1",
        "Probabilistic approach, §5 protocol (13 observations, 8 runs)\n"
        f"valid-estimation rate: {100 * rate:.1f}%  (paper: 60%)\n"
        f"per-run rates: {[f'{100 * r:.0f}%' for r in rates]}\n"
        f"mean deviation: {np.mean(deviations):.2f} ft "
        f"(median of runs {np.median(deviations):.2f} ft)\n"
        "validity = named training point within one 10-ft grid step of truth",
    )
    assert 0.40 <= rate <= 0.85  # the calibrated band around the paper's 60%
