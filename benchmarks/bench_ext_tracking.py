"""EXT-TRACK — future work §6.2: tracking filters vs static estimation.

The paper proposes combining "the historical location value and the
current signal strength value" with "more powerful statistic tool, such
as Bayesian-filter".  This bench walks a client through the house (the
scanner's walk session) and compares single-shot localization against
the three trackers on the same observation stream.

Expected shape: every tracker beats its static counterpart on mean
error along the walk, and all trackers produce smoother tracks.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.algorithms.base import Observation
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.tracking import (
    DiscreteBayesTracker,
    KalmanTracker,
    ParticleFilterTracker,
    RSSIField,
)
from repro.core.geometry import Point

WALK = [Point(5, 5), Point(45, 5), Point(45, 35), Point(25, 35), Point(25, 15), Point(5, 15)]


def walk_stream(house, rng=21):
    pairs = house.scanner.walk_session(WALK, speed_ft_s=3.0, rng=rng)
    bssids = [ap.bssid for ap in house.aps]
    return (
        [p for p, _ in pairs],
        [
            Observation(
                np.array(
                    [[s.rssi_of(b) if s.rssi_of(b) is not None else np.nan for b in bssids]]
                )
            )
            for _, s in pairs
        ],
    )


def mean_error(path, estimates, skip=5):
    errs = [
        e.position.distance_to(p)
        for p, e in zip(path, estimates)
        if e.valid and e.position is not None
    ]
    return float(np.mean(errs[skip:]))


def test_ext_tracking_vs_static(benchmark, house, training_db):
    path, stream = walk_stream(house)
    prob = ProbabilisticLocalizer().fit(training_db)
    knn = KNNLocalizer(k=3).fit(training_db)

    static_prob = [prob.locate(o) for o in stream]
    static_knn = [knn.locate(o) for o in stream]

    bayes = DiscreteBayesTracker(prob, training_db, speed_ft_s=4.0)
    kalman = KalmanTracker(knn, measurement_std_ft=8.0)
    particle = ParticleFilterTracker(
        RSSIField(training_db), bounds=house.bounds(), n_particles=500, speed_ft_s=4.0, rng=0
    )

    benchmark.pedantic(
        lambda: DiscreteBayesTracker(prob, training_db).track(stream),
        rounds=1,
        iterations=1,
    )

    results = {
        "static probabilistic": mean_error(path, static_prob),
        "static knn(3)": mean_error(path, static_knn),
        "bayes filter": mean_error(path, bayes.track(stream)),
        "kalman(knn)": mean_error(path, kalman.track(stream)),
        "kalman + RTS smoother": mean_error(path, kalman.smooth(stream)),
        "particle filter": mean_error(path, particle.track(stream)),
    }
    lines = [f"Walking-track comparison ({len(stream)} scans at 1 Hz, 3 ft/s)"]
    for name, err in results.items():
        lines.append(f"{name:<22s} mean error {err:6.2f} ft")
    lines.append(
        "shape: each tracker beats its static emission source; offline "
        "smoothing beats online filtering"
    )
    record("EXT-TRACK", "\n".join(lines))

    assert results["bayes filter"] < results["static probabilistic"]
    assert results["kalman(knn)"] < results["static knn(3)"]
    assert results["kalman + RTS smoother"] <= results["kalman(knn)"] * 1.05
    assert results["particle filter"] < results["static probabilistic"] * 1.3
