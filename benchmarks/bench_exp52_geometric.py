"""EXP5.2 — the geometric approach's average deviation.

Paper §5.2: "the average deviation (distance between the estimate
location and the actual location) of the 13 observation is ___ feet"
(the number is corrupted in the archived text; the contemporaneous
RSSI-ranging literature and our calibration target the 10–20 ft band,
nominal 13.6 ft).

The bench runs the ring-intersection/median pipeline over the §5
protocol and reports mean deviation; timing covers one Phase-2
localization (fit inversion + 4 circle intersections + median).
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.algorithms.geometric import GeometricLocalizer
from repro.experiments.runner import run_protocol


def test_exp52_geometric_deviation(benchmark, house, training_db, observations):
    localizer = GeometricLocalizer(house.ap_positions_by_bssid()).fit(training_db)

    benchmark(localizer.locate, observations[0])

    deviations, rates = [], []
    for seed in range(8):
        result = run_protocol("geometric", house=house, rng=seed)
        deviations.append(result.metrics.mean_deviation_ft)
        rates.append(result.metrics.valid_rate)
    mean_dev = float(np.mean(deviations))
    record(
        "EXP5.2",
        "Geometric approach, §5 protocol (13 observations, 8 runs)\n"
        f"average deviation: {mean_dev:.2f} ft  "
        "(paper: number corrupted in archive; target band 10-20 ft)\n"
        f"per-run mean deviations: {[f'{d:.1f}' for d in deviations]} ft\n"
        f"valid-estimation rate (10 ft tolerance): {100 * np.mean(rates):.1f}%\n"
        "pipeline: per-AP inverse-square fit -> SS->distance inversion -> "
        "ring circle intersections P1..P4 -> componentwise median point",
    )
    assert 8.0 <= mean_dev <= 22.0
