"""ABL-WINDOW — observation-window (averaging) ablation.

Paper §6.2: "Current algorithm requires signal strength values in 1.5
minutes, and uses only the average signal strength value of it."  This
ablation sweeps the Phase-2 window from a single 5-s burst to the full
90 s and adds the histogram method (which consumes the whole
distribution) next to the mean-only probabilistic approach.

Expected shapes: longer windows help everything (temporal fading
averages out); the distribution-aware method holds up better at short
windows than at... rather, gains at least as much from the window as
the mean-only method — the paper's §6.2 motivation.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.experiments.house import HouseConfig
from repro.experiments.sweeps import format_table, summarize, sweep
from repro.parallel.pool import ParallelConfig

WINDOWS = [5.0, 15.0, 45.0, 90.0]


def run_sweep():
    return sweep(
        "observation_dwell_s",
        WINDOWS,
        algorithms=("probabilistic", "histogram", "geometric"),
        n_runs=3,
        base_config=HouseConfig(),  # full 90 s training dwell
        parallel=ParallelConfig(max_workers=1),
        seed_label="abl-window",
    )


def test_abl_observation_window(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    summary = summarize(rows)
    record(
        "ABL-WINDOW",
        format_table(summary, title="Phase-2 averaging-window ablation (s)"),
    )

    by = {(s["value"], s["algorithm"]): s for s in summary}
    for alg in ("probabilistic", "histogram"):
        # The paper's 90 s window must beat a 5 s burst.
        assert by[(90.0, alg)]["valid_rate"] >= by[(5.0, alg)]["valid_rate"]
