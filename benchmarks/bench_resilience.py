"""BENCH-RESILIENCE — availability under injected faults.

The resilience-layer acceptance criterion: under chaos — failing
fallback tiers, injected dispatch latency, dropped connections, a
mid-load graceful drain — every request must be *answered or cleanly
rejected*.  A clean rejection is a well-formed 429/503/504 with a
machine-readable body; the only dirty outcome is a transport error the
retrying client could not absorb.  The floor is ≥ 99% clean per
scenario (``availability`` in the shared error-budget schema).

Load comes from ``loadgen`` — the identical ServiceClient-based
generator BENCH-SERVE uses — so throughput and error-budget numbers
are directly comparable across the two benches.

Scenarios
---------
* ``baseline``        — breakers armed, no chaos: the control run.
* ``tier_chaos``      — geometric + probabilistic tiers always raise;
                        circuit breakers must open (asserted via
                        ``serve.breaker.transitions``) and the nearest
                        tier keeps answering.
* ``latency_chaos``   — injected dispatch latency with client deadlines
                        propagated via ``X-Deadline-Ms``.
* ``reset_chaos``     — a fraction of responses become connection
                        resets; client retries must absorb them.
* ``drain``           — ``/admin/drain`` lands mid-load: in-flight work
                        finishes (``unfinished == 0``), later requests
                        are clean 503s.

Numbers land in ``benchmarks/results/BENCH_RESILIENCE.json`` alongside
the paper-style table.
"""

from __future__ import annotations

import json
import threading
import time

from conftest import RESULTS_DIR, record
from loadgen import observation_doc, run_load, summarize

from repro import obs
from repro.serve import (
    ChaosPolicy,
    LocalizationHTTPServer,
    LocalizationService,
    ServiceClient,
)

N_WORKERS = 16
REQUESTS_PER_WORKER = 25

#: The answered-or-cleanly-rejected floor per scenario.  Conservative on
#: purpose: the reset scenario's worst case (every retry also reset) is
#: ~rate**(1+max_retries) per request — orders of magnitude under 1%.
MIN_AVAILABILITY = 0.99


def _breaker_opens(snapshot) -> int:
    return sum(
        count for key, count in snapshot["counters"].items()
        if key.startswith("serve.breaker.transitions{") and "to=open" in key
    )


def _service(house, training_db, chaos=None):
    return LocalizationService(
        training_db,
        ap_positions=house.ap_positions_by_bssid(),
        bounds=house.bounds(),
        chaos=chaos,
    )


def _run_scenario(label, service, docs, *, chaos=None, deadline_ms=None,
                  max_retries=0, **extra):
    with LocalizationHTTPServer(
        service, max_batch=64, max_wait_ms=2.0, max_queue=4096, chaos=chaos
    ) as server:
        wall, reports = run_load(
            server.port, docs, N_WORKERS, REQUESTS_PER_WORKER,
            deadline_ms=deadline_ms, max_retries=max_retries,
        )
    return summarize(label, wall, reports, **extra)


def _drain_scenario(house, training_db, docs):
    """Graceful drain under live load: old work finishes, new is 503."""
    service = _service(house, training_db)
    stop = threading.Event()
    background = {}
    with LocalizationHTTPServer(
        service, max_batch=64, max_wait_ms=2.0, max_queue=4096
    ) as server:
        port = server.port

        def load():
            # Oversized request count: the drain lands mid-run and the
            # stop event (set after the drain completes) ends the loop.
            background["result"] = run_load(
                port, docs, N_WORKERS, 10_000, stop=stop
            )

        loader = threading.Thread(target=load)
        loader.start()
        admin = ServiceClient(port=port, max_retries=0)
        try:
            time.sleep(0.5)  # let the load ramp: drains must land mid-flight
            t0 = time.perf_counter()
            ack = admin.drain()
            assert ack.status == 200 and ack.doc["draining"] is True, ack
            # The drain report surfaces on /healthz (lifecycle check)
            # once the off-thread wait finishes.
            report = None
            while report is None and time.perf_counter() - t0 < 30.0:
                health = admin.healthz()
                lifecycle = health.doc["checks"]["lifecycle"]["detail"]
                report = lifecycle.get("report")
                if report is None:
                    time.sleep(0.05)
            assert report is not None, "drain never reported completion"
            drain_s = time.perf_counter() - t0
            # Post-drain data-plane traffic: a clean, machine-readable 503.
            turned_away = admin.locate(docs[0])
        finally:
            admin.close()
            stop.set()
            loader.join(timeout=60.0)
        assert not loader.is_alive(), "load workers wedged after drain"
    wall, reports = background["result"]
    result = summarize("drain", wall, reports,
                       drain_s=round(drain_s, 3), drain_report=report)
    budget = result["error_budget"]
    assert report["unfinished"] == 0, f"drain abandoned in-flight work: {report}"
    assert turned_away.category == "draining_503", turned_away
    assert turned_away.doc["error"] == "draining"
    assert budget["ok"] > 0, "drain landed before any request was answered"
    assert budget["draining_503"] > 0, "no request observed the draining state"
    return result


def test_resilience_availability(house, training_db, test_points):
    observations = house.observe_all(test_points, rng=5, dwell_s=5.0)
    docs = [observation_doc(o) for o in observations]
    scenarios = {}

    scenarios["baseline"] = _run_scenario(
        "baseline", _service(house, training_db), docs
    )
    assert scenarios["baseline"]["ok_fraction"] == 1.0, scenarios["baseline"]

    tier_chaos = ChaosPolicy(
        tier_error_rate=1.0, tiers=("geometric", "probabilistic"), seed=7
    )
    before = _breaker_opens(obs.snapshot())
    scenarios["tier_chaos"] = _run_scenario(
        "tier_chaos", _service(house, training_db, chaos=tier_chaos), docs,
        chaos=tier_chaos,
    )
    opens = _breaker_opens(obs.snapshot()) - before
    scenarios["tier_chaos"]["breaker_opens"] = opens
    assert opens >= 1, "tier chaos never tripped a circuit breaker"
    assert scenarios["tier_chaos"]["ok_fraction"] >= MIN_AVAILABILITY, (
        "the nearest tier should have absorbed every request"
    )

    latency_chaos = ChaosPolicy(
        latency_ms=5.0, latency_rate=0.5, latency_jitter_ms=10.0, seed=11
    )
    scenarios["latency_chaos"] = _run_scenario(
        "latency_chaos", _service(house, training_db), docs,
        chaos=latency_chaos, deadline_ms=5_000.0,
    )

    reset_chaos = ChaosPolicy(reset_rate=0.05, seed=13)
    scenarios["reset_chaos"] = _run_scenario(
        "reset_chaos", _service(house, training_db), docs,
        chaos=reset_chaos, max_retries=3,
    )
    assert scenarios["reset_chaos"]["error_budget"]["ok"] > 0

    scenarios["drain"] = _drain_scenario(house, training_db, docs)

    lines = [
        f"Closed-loop /v1/locate chaos runs: {N_WORKERS} retrying clients, "
        f"availability floor {MIN_AVAILABILITY:.0%} (clean = answered or "
        f"well-formed 429/503/504)",
        f"{'scenario':<16s}{'req':>6s}{'ok':>6s}{'429':>5s}{'503':>5s}"
        f"{'504':>5s}{'xport':>6s}{'avail':>8s}{'rps':>8s}",
    ]
    for name, r in scenarios.items():
        b = r["error_budget"]
        lines.append(
            f"{name:<16s}{r['requests']:>6d}{b['ok']:>6d}{b['rejected_429']:>5d}"
            f"{b['draining_503']:>5d}{b['deadline_504']:>5d}"
            f"{b['transport_error']:>6d}{r['availability']:>8.4f}"
            f"{(r['rps'] or 0):>8.1f}"
        )
    lines.append(
        f"tier_chaos breaker opens: {scenarios['tier_chaos']['breaker_opens']}; "
        f"drain: unfinished={scenarios['drain']['drain_report']['unfinished']} "
        f"in {scenarios['drain']['drain_s']:.2f}s"
    )
    record("BENCH-RESILIENCE", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_RESILIENCE.json").write_text(
        json.dumps(
            {
                "scenarios": scenarios,
                "floors": {"availability": MIN_AVAILABILITY},
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    for name, r in scenarios.items():
        assert r["availability"] >= MIN_AVAILABILITY, (
            f"{name}: availability {r['availability']} below the "
            f"{MIN_AVAILABILITY} floor (budget {r['error_budget']})"
        )
