"""FIG2 — Figure 2: the Floor Plan Processor's annotated plan.

The paper's Figure 2 is a screenshot of the Processor GUI showing a
loaded, annotated floor plan.  This bench regenerates the artifact the
screenshot depicts: a scanned-style blueprint GIF carrying all six
annotation operations, saved and reloaded losslessly.  The timing
covers the full authoring session (render → annotate → save → load).
"""

from __future__ import annotations

from conftest import record

from repro.core.floorplan import FloorPlan
from repro.core.processor import FloorPlanProcessor
from repro.imaging.blueprint import experiment_house_blueprint
from repro.imaging.gif import write_gif


def author_plan(tmp_path):
    blueprint_path = tmp_path / "scan.gif"
    write_gif(blueprint_path, experiment_house_blueprint(pixels_per_foot=8.0))

    proc = FloorPlanProcessor()
    margin, ppf = 40, 8.0

    def px(x_ft, y_ft):
        return (margin + x_ft * ppf, margin + (40 - y_ft) * ppf)

    proc.load(blueprint_path)
    ox, oy = px(0, 0)
    proc.set_scale(*px(0, 0), *px(50, 0), 50.0)
    proc.set_origin(ox, oy)
    for name, (x, y) in (("A", (0, 0)), ("B", (50, 0)), ("C", (50, 40)), ("D", (0, 40))):
        proc.add_access_point(name, *px(x, y))
    for name, (x, y) in (
        ("Bed 1", (10, 12)),
        ("Bed 2", (10, 33)),
        ("Living", (35, 6)),
        ("Kitchen", (42, 33)),
        ("Hall", (27, 18)),
    ):
        proc.add_location(name, *px(x, y))
    out = tmp_path / "annotated.gif"
    proc.save(out)
    return out


def test_fig2_processor_session(benchmark, tmp_path):
    out_path = benchmark(author_plan, tmp_path)
    plan = FloorPlan.load(out_path)
    assert plan.has_scale and plan.has_origin
    assert len(plan.access_points) == 4
    assert len(plan.locations) == 5

    size = out_path.stat().st_size
    record(
        "FIG2",
        "Floor Plan Processor artifact (paper Figure 2)\n"
        f"plan image: {plan.image.width}x{plan.image.height}px, "
        f"{plan.feet_per_pixel:.4f} ft/px\n"
        f"annotations: {len(plan.access_points)} APs, {len(plan.locations)} named "
        f"locations, origin at ({plan.origin.px:g}, {plan.origin.py:g})px\n"
        f"saved GIF (with embedded annotations): {size} bytes\n"
        "paper: GUI screenshot (not a measurable figure); we regenerate the "
        "document it displays, losslessly round-tripped",
    )
