"""ROBUST-DEGRADED — the fallback chain under AP dropout.

The §5.2 geometric approach needs every AP ranged: under the paper's
4-AP protocol a single silenced AP (a powered-off unit, a new obstacle)
drops its validity to zero.  This bench injects exactly that fault —
one random AP removed from every observation — and compares the
geometric-only baseline against the degraded-mode fallback chain
(geometric → probabilistic → nearest training point).

Acceptance (ISSUE): chain validity must beat the geometric baseline,
and every chain answer must carry diagnostics naming the tier that
produced it.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from conftest import record

from repro.algorithms import FallbackLocalizer, make_localizer
from repro.experiments.metrics import ExperimentMetrics
from repro.robustness import APDropout, inject_observation

EXP_ID = "ROBUST-DEGRADED"


def run_degraded(house, training_db, test_points, observations):
    aps = house.ap_positions_by_bssid()
    # Paper protocol: §5.2 ranges all four APs; min_aps=4 encodes that.
    geometric = make_localizer("geometric", ap_positions=aps, min_aps=4).fit(training_db)
    chain = FallbackLocalizer(ap_positions=aps, bounds=house.bounds()).fit(training_db)

    rng = np.random.default_rng(42)
    degraded = [inject_observation(o, [APDropout(k=1)], rng) for o in observations]

    geo_est = [geometric.locate(o) for o in degraded]
    chain_est = [chain.locate(o) for o in degraded]
    tiers = Counter(e.details.get("tier") for e in chain_est if e.valid)
    return {
        "healthy_geo": ExperimentMetrics.compute(
            test_points, [geometric.locate(o) for o in observations]
        ),
        "geo": ExperimentMetrics.compute(test_points, geo_est),
        "chain": ExperimentMetrics.compute(test_points, chain_est),
        "tiers": tiers,
        "chain_est": chain_est,
    }


def test_robust_degraded(benchmark, house, training_db, test_points, observations):
    results = benchmark.pedantic(
        run_degraded,
        args=(house, training_db, test_points, observations),
        rounds=1,
        iterations=1,
    )

    lines = ["One-of-four AP dropout (every observation loses one AP)"]
    lines.append(results["healthy_geo"].row("geometric (healthy)"))
    lines.append(results["geo"].row("geometric (dropout)"))
    lines.append(results["chain"].row("fallback chain"))
    lines.append(
        "answering tiers: "
        + ", ".join(f"{t}={n}" for t, n in sorted(results["tiers"].items()))
    )
    record(EXP_ID, "\n".join(lines))

    # The acceptance bar: the chain must beat the geometric-only baseline.
    assert results["chain"].valid_rate > results["geo"].valid_rate
    # With the paper's all-APs protocol, one dropout zeroes geometric.
    assert results["geo"].valid_rate == 0.0
    # Every chain answer names the tier that produced it.
    for est in results["chain_est"]:
        if est.valid:
            assert est.details.get("tier") in ("geometric", "probabilistic", "nearest")
            assert "declined" in est.details
