"""ABL-APS — access-point count ablation.

The paper deploys exactly four APs at the corners.  This ablation grows
the deployment from the 3-AP minimum (the geometric approach's floor)
to 8 and measures how much each extra AP buys.  Expected shape: both
approaches improve with more APs, with diminishing returns after ~5-6
(each new AP adds a less-independent constraint).
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.experiments.house import HouseConfig
from repro.experiments.sweeps import format_table, summarize, sweep
from repro.parallel.pool import ParallelConfig

COUNTS = [3, 4, 6, 8]


def run_sweep():
    return sweep(
        "n_aps",
        COUNTS,
        algorithms=("probabilistic", "geometric"),
        n_runs=3,
        base_config=HouseConfig(dwell_s=30.0),
        parallel=ParallelConfig(max_workers=1),
        seed_label="abl-aps",
    )


def test_abl_ap_count(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    summary = summarize(rows)
    record("ABL-APS", format_table(summary, title="AP-count ablation"))

    by = {(s["value"], s["algorithm"]): s for s in summary}
    for alg in ("probabilistic", "geometric"):
        # 8 APs must beat the 3-AP minimum end-to-end.
        assert by[(8, alg)]["mean_deviation_ft"] < by[(3, alg)]["mean_deviation_ft"]
    # Fingerprinting with 8 APs should reach single-grid-cell accuracy.
    assert by[(8, "probabilistic")]["mean_deviation_ft"] < 10.0
