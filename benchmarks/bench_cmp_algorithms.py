"""CMP-ALL — every implemented algorithm under the common §5 protocol.

One table, all seven static localizers, identical training data and
observations.  This is the summary table DESIGN.md promises; the per-
algorithm expectations encode the family-level shapes the paper's
survey (§2) predicts:

* fingerprinting (probabilistic / knn / histogram / fieldmle / scene)
  clusters at the top — location-specific signatures absorb the
  shadowing bias — with the continuous fieldmle matching or beating the
  grid-bound §5.1 argmax;
* the rank matcher lands mid-pack: coarse (24 orderings of 4 APs) but
  the only one that is device-invariant (see ABL-DEVICE);
* pure ranging (geometric / multilateration) sits well below — the same
  shadowing is unmodelled error for them;
* the sector approach degenerates gracefully in a small house where all
  four APs are audible everywhere (its code table is not identifying),
  answering near the house centroid.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.experiments.runner import run_protocol

ALGORITHMS = (
    "probabilistic",
    "knn",
    "histogram",
    "fieldmle",
    "scene",
    "rank",
    "geometric",
    "multilateration",
    "sector",
)


def run_all(house, training_db):
    out = {}
    for alg in ALGORITHMS:
        runs = [
            run_protocol(alg, house=house, rng=seed, training_db=training_db)
            for seed in range(3)
        ]
        out[alg] = {
            "valid_rate": float(np.mean([r.metrics.valid_rate for r in runs])),
            "mean_deviation_ft": float(
                np.mean([r.metrics.mean_deviation_ft for r in runs])
            ),
            "median_deviation_ft": float(
                np.mean([r.metrics.median_deviation_ft for r in runs])
            ),
        }
    return out


def test_cmp_all_algorithms(benchmark, house, training_db):
    results = benchmark.pedantic(run_all, args=(house, training_db), rounds=1, iterations=1)

    lines = ["All algorithms, common §5 protocol (3 runs each)"]
    lines.append(f"{'algorithm':<16s}{'valid%':>8s}{'mean_ft':>9s}{'median_ft':>10s}")
    for alg in sorted(results, key=lambda a: results[a]["mean_deviation_ft"]):
        m = results[alg]
        lines.append(
            f"{alg:<16s}{100 * m['valid_rate']:>7.1f}%{m['mean_deviation_ft']:>9.2f}"
            f"{m['median_deviation_ft']:>10.2f}"
        )
    record("CMP-ALL", "\n".join(lines))

    fingerprint = min(
        results[a]["mean_deviation_ft"] for a in ("probabilistic", "knn", "histogram")
    )
    ranging = min(
        results[a]["mean_deviation_ft"] for a in ("geometric", "multilateration")
    )
    assert fingerprint < ranging  # the paper-era consensus, reproduced
    # Sector answers near the centroid when the code table degenerates:
    # bounded error, low valid rate.
    assert results["sector"]["mean_deviation_ft"] < 30.0
