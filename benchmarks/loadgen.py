"""Shared closed-loop load generator for the serving benches.

BENCH-SERVE and BENCH-RESILIENCE drive the service with the *same*
client (:class:`repro.serve.client.ServiceClient` — the reference
retrying client) and report the *same* result schema, so their numbers
are directly comparable:

* ``error_budget`` — request outcomes classified into the shared
  vocabulary (``ok`` / ``rejected_429`` / ``deadline_504`` /
  ``draining_503`` / ``client_4xx`` / ``server_5xx`` /
  ``transport_error``);
* ``availability`` — the answered-or-cleanly-rejected fraction (every
  category except ``transport_error``), the resilience floor;
* ``rps`` / ``p50_ms`` / ``p99_ms`` — throughput and latency of the
  requests that were answered OK.

The generator is closed-loop: W workers, each one keep-alive HTTP/1.1
connection, each submitting its next request only after the previous
answer arrives — the shape of real interactive clients, and the regime
micro-batching is designed for.
"""

from __future__ import annotations

import statistics
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.serve.client import ClientReport, RetryBudget, ServiceClient, fold_reports

__all__ = ["observation_doc", "run_load", "summarize"]


def observation_doc(observation) -> Dict[str, object]:
    """An Observation → its wire document (NaN → null)."""
    return {
        "samples": [
            [None if v != v else v for v in row]
            for row in observation.samples.tolist()
        ],
        "bssids": list(observation.bssids),
    }


def run_load(
    port: int,
    docs: Sequence[Dict[str, object]],
    n_workers: int,
    requests_per_worker: int,
    *,
    host: str = "127.0.0.1",
    deadline_ms: Optional[float] = None,
    max_retries: int = 0,
    timeout_s: float = 60.0,
    shared_budget: Optional[RetryBudget] = None,
    stop: Optional[threading.Event] = None,
    sites: Optional[Sequence[str]] = None,
):
    """Closed-loop run; returns ``(wall_s, reports)``.

    Each worker holds one :class:`ServiceClient` (keep-alive connection,
    seeded jitter RNG).  ``max_retries=0`` measures the raw service;
    retries on measure the client-and-service system.  An optional
    ``stop`` event ends workers early (the drain scenario).  With
    ``sites``, worker *wid* pins itself to ``sites[wid % len(sites)]``
    and drives the site-routed ``/v1/sites/{id}/locate`` endpoint —
    the skewed-fleet regime BENCH-SITES measures.
    """
    start_gate = threading.Event()
    buckets: List[List[ClientReport]] = [[] for _ in range(n_workers)]

    def worker(wid: int) -> None:
        client = ServiceClient(
            host=host, port=port, timeout_s=timeout_s,
            max_retries=max_retries, seed=wid,
            budget=shared_budget if shared_budget is not None else RetryBudget(),
        )
        site = sites[wid % len(sites)] if sites else None
        try:
            start_gate.wait()
            for i in range(requests_per_worker):
                if stop is not None and stop.is_set():
                    return
                doc = docs[(wid + i) % len(docs)]
                buckets[wid].append(
                    client.locate(doc, deadline_ms=deadline_ms, site=site)
                )
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(wid,)) for wid in range(n_workers)]
    for t in threads:
        t.start()
    t0 = time.perf_counter()
    start_gate.set()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return wall, [report for bucket in buckets for report in bucket]


def summarize(label: str, wall_s: float, reports: Sequence[ClientReport],
              **extra) -> Dict[str, object]:
    """One run → the shared result schema (error budget + latency)."""
    folded = fold_reports(list(reports))
    ok_latencies = sorted(r.latency_s for r in reports if r.ok)
    out: Dict[str, object] = {
        "label": label,
        "requests": folded["total"],
        "wall_s": round(wall_s, 3),
        "rps": round(folded["total"] / wall_s, 1) if wall_s > 0 else None,
        "error_budget": folded["error_budget"],
        "availability": folded["availability"],
        "ok_fraction": folded["ok_fraction"],
    }
    if ok_latencies:
        out["p50_ms"] = round(1000 * statistics.median(ok_latencies), 2)
        out["p99_ms"] = round(
            1000 * ok_latencies[int(0.99 * (len(ok_latencies) - 1))], 2
        )
    out.update(extra)
    return out
