"""PERF-BATCH — vectorized bulk localization throughput, every localizer.

The optimization-guide angle of the reproduction: Phase-2 scoring is a
broadcastable computation, so ``locate_many`` evaluates the whole
observation batch through the chunked scoring engine instead of M
single-observation passes.  This bench measures the answer-identical
speedup at a realistic bulk size (offline evaluation of a day's scans)
for **every** registered localizer plus the tiered fallback chain, and
the absolute throughput a deployed positioning service cares about.

Besides the paper-style table, the numbers land machine-readable in
``benchmarks/results/BENCH_PERF.json`` so CI can compare a change
against the committed baseline (``benchmarks/BENCH_PERF_BASELINE.json``
via ``benchmarks/check_perf_regression.py``).
"""

from __future__ import annotations

import json
import time

from conftest import RESULTS_DIR, record

from repro.algorithms.fallback import FallbackLocalizer
from repro.algorithms.fieldmle import FieldMLELocalizer
from repro.algorithms.geometric import GeometricLocalizer
from repro.algorithms.histogram import HistogramLocalizer
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.multilateration import MultilaterationLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.rank import RankLocalizer
from repro.algorithms.scene import SceneAnalysisLocalizer
from repro.algorithms.sector import SectorLocalizer

N_OBSERVATIONS = 500

#: Minimum loop→batch speedup each localizer must keep delivering.
#: Vectorization-dominated kernels clear 3x easily; the floors are the
#: PR's acceptance criteria, not aspirations.
SPEEDUP_FLOORS = {
    "probabilistic": 3.0,
    "knn": 3.0,
    "fieldmle": 3.0,
    "histogram": 3.0,
    "rank": 3.0,
    "scene": 3.0,
    "sector": 3.0,
    "geometric": 3.0,
    "multilateration": 3.0,
    "fallback-chain": 5.0,
}


def _build_localizers(house, training_db):
    ap_pos = house.ap_positions_by_bssid()
    cfg = house.config
    return {
        "probabilistic": ProbabilisticLocalizer(),
        "knn": KNNLocalizer(k=3),
        "fieldmle": FieldMLELocalizer(resolution_ft=5.0, refine=False),
        "histogram": HistogramLocalizer(),
        "rank": RankLocalizer(),
        "scene": SceneAnalysisLocalizer(),
        "sector": SectorLocalizer(),
        "geometric": GeometricLocalizer(ap_pos),
        "multilateration": MultilaterationLocalizer(ap_pos),
        "fallback-chain": FallbackLocalizer(
            ap_positions=ap_pos,
            bounds=(0.0, 0.0, cfg.width_ft, cfg.height_ft),
        ),
    }


def _identical(a, b) -> bool:
    return (
        a.valid == b.valid
        and a.location_name == b.location_name
        and a.score == b.score
        and (
            (a.position is None and b.position is None)
            or (
                a.position is not None
                and b.position is not None
                and a.position.x == b.position.x
                and a.position.y == b.position.y
            )
        )
    )


def test_perf_batch_localization(benchmark, house, training_db, test_points):
    observations = house.observe_all(
        list(test_points) * (N_OBSERVATIONS // len(test_points) + 1),
        rng=3,
        dwell_s=5.0,
    )[:N_OBSERVATIONS]

    rows = []
    results_json = {"n_observations": N_OBSERVATIONS, "localizers": {}}
    batch_for_bench = None
    for name, loc in _build_localizers(house, training_db).items():
        loc.fit(training_db)
        t0 = time.perf_counter()
        loop = [loc.locate(o) for o in observations]
        t_loop = time.perf_counter() - t0
        t0 = time.perf_counter()
        batch = loc.locate_many(observations)
        t_batch = time.perf_counter() - t0
        assert all(
            _identical(a, b) for a, b in zip(loop, batch)
        ), f"{name}: batch answers diverged from the loop"
        speedup = t_loop / t_batch
        rate = N_OBSERVATIONS / t_batch
        rows.append((name, 1000 * t_loop, 1000 * t_batch, speedup, rate))
        results_json["localizers"][name] = {
            "loop_ms": round(1000 * t_loop, 3),
            "batch_ms": round(1000 * t_batch, 3),
            "speedup": round(speedup, 3),
            "obs_per_s": round(rate, 1),
        }
        if batch_for_bench is None:
            batch_for_bench = loc

    benchmark(batch_for_bench.locate_many, observations)

    lines = [f"Bulk localization of {N_OBSERVATIONS} observations"]
    lines.append(
        f"{'localizer':<26s}{'loop ms':>9s}{'batch ms':>10s}{'speedup':>9s}{'obs/s':>10s}"
    )
    for name, loop_ms, batch_ms, speedup, rate in rows:
        lines.append(
            f"{name:<26s}{loop_ms:>9.1f}{batch_ms:>10.1f}{speedup:>8.1f}x{rate:>10.0f}"
        )
    record("PERF-BATCH", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_PERF.json").write_text(
        json.dumps(results_json, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    for name, _, _, speedup, _ in rows:
        floor = SPEEDUP_FLOORS[name]
        assert (
            speedup >= floor
        ), f"{name}: batch speedup {speedup:.2f}x below its {floor:.0f}x floor"
