"""PERF-BATCH — vectorized bulk localization throughput.

The optimization-guide angle of the reproduction: Phase-2 scoring is a
broadcastable computation, so `locate_many` evaluates the whole
observation batch as one ``(M, L, A)`` expression instead of M
``(L, A)`` passes.  This bench measures the answer-identical speedup at
a realistic bulk size (offline evaluation of a day's scans) and the
absolute throughput, which is the number a deployed positioning service
cares about.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import record

from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer

N_OBSERVATIONS = 500


def test_perf_batch_localization(benchmark, house, training_db, test_points):
    observations = house.observe_all(
        list(test_points) * (N_OBSERVATIONS // len(test_points) + 1),
        rng=3,
        dwell_s=5.0,
    )[:N_OBSERVATIONS]

    rows = []
    batch_for_bench = None
    for cls in (ProbabilisticLocalizer, KNNLocalizer):
        loc = cls().fit(training_db)
        t0 = time.perf_counter()
        loop = [loc.locate(o) for o in observations]
        t_loop = time.perf_counter() - t0
        t0 = time.perf_counter()
        batch = loc.locate_many(observations)
        t_batch = time.perf_counter() - t0
        identical = all(
            a.position == b.position and a.valid == b.valid for a, b in zip(loop, batch)
        )
        assert identical, f"{cls.__name__}: batch answers diverged from the loop"
        rows.append(
            (
                cls.__name__,
                1000 * t_loop,
                1000 * t_batch,
                t_loop / t_batch,
                N_OBSERVATIONS / t_batch,
            )
        )
        if batch_for_bench is None:
            batch_for_bench = loc

    benchmark(batch_for_bench.locate_many, observations)

    lines = [f"Bulk localization of {N_OBSERVATIONS} observations"]
    lines.append(
        f"{'localizer':<26s}{'loop ms':>9s}{'batch ms':>10s}{'speedup':>9s}{'obs/s':>10s}"
    )
    for name, loop_ms, batch_ms, speedup, rate in rows:
        lines.append(
            f"{name:<26s}{loop_ms:>9.1f}{batch_ms:>10.1f}{speedup:>8.1f}x{rate:>10.0f}"
        )
    record("PERF-BATCH", "\n".join(lines))

    for name, _, _, speedup, _ in rows:
        assert speedup > 1.0, f"{name}: batch path slower than the loop"
