"""BENCH-SITES — fleet serving through the multi-site model registry.

The fleet acceptance criterion: routing every request through
``ModelRegistry`` (site resolution, LRU residency, pin accounting)
must cost ~nothing when the working set fits in cache, and cold-site
churn in the background must not wreck latency for the hot sites.

Two phases against one registry-backed server (8 sites, capacity 4):

* **warm** — closed-loop load pinned to 3 hot sites.  Every acquire is
  a cache hit; throughput must hold ≥ 0.9× the single-site
  ``MIN_BATCHED_RPS`` floor from BENCH-SERVE (the registry tax
  allowance is the 10%).
* **mixed** — the same hot traffic while a churner walks the 5 cold
  sites round-robin, forcing an eviction + model load per visit.  Hot
  p99 may stretch at most 2× the warm-only p99: loads happen outside
  the registry lock (single-flight), so cold sites pay, hot sites
  don't.

Numbers land machine-readable in ``benchmarks/results/BENCH_SITES.json``
alongside the paper-style table; ``check_perf_regression.py`` gates on
the floors recorded there.
"""

from __future__ import annotations

import json
import threading

from conftest import RESULTS_DIR, record
from loadgen import observation_doc, run_load, summarize

import pytest

from repro.serve import LocalizationHTTPServer, ModelRegistry, SiteDefinition
from repro.serve.client import ServiceClient
from repro.serve.registry import write_fleet_manifest

N_SITES = 8
CAPACITY = 4
N_HOT = 3  # hot working set: fits in cache beside the pinned default

N_WORKERS = 24
REQUESTS_PER_WORKER = 40
WARMUP_PER_WORKER = 3

#: Acceptance floors.  BENCH-SERVE holds single-site micro-batched
#: serving to ≥ 150 req/s; the registry path (resolve + LRU touch +
#: pin/unpin per request) is allowed to cost at most 10% of that.
MIN_CACHE_HIT_RPS = 135.0
#: Cold-site churn may stretch hot-site p99 by at most this factor.
MAX_MIXED_P99_RATIO = 2.0
#: p99s on an idle machine are a couple of ms; guard the ratio against
#: sub-5 ms noise so the gate measures interference, not jitter.
P99_NOISE_FLOOR_MS = 5.0


@pytest.fixture(scope="module")
def fleet_manifest(tmp_path_factory, house):
    """8 frozen ``.tdbx`` packs surveyed from the §5 house, one rng each."""
    root = tmp_path_factory.mktemp("bench-fleet")
    ap_positions = house.ap_positions_by_bssid()
    bounds = house.bounds()
    sites = {}
    for i in range(N_SITES):
        sid = f"site-{i:02d}"
        db = house.training_database(rng=i)
        pack = root / f"{sid}.tdbx"
        db.freeze(str(pack), ap_positions=ap_positions)
        sites[sid] = SiteDefinition(
            site_id=sid,
            database=str(pack),
            ap_positions=ap_positions,
            bounds=bounds,
        )
    return write_fleet_manifest(root, sites, default="site-00")


def _churn_cold_sites(port, doc, cold_sites, stop, counts):
    """Round-robin the cold sites until told to stop — every visit past
    the first sweep evicts the previously coldest model and loads anew."""
    client = ServiceClient(host="127.0.0.1", port=port, timeout_s=60.0,
                          max_retries=0, seed=997)
    try:
        i = 0
        while not stop.is_set():
            report = client.locate(doc, site=cold_sites[i % len(cold_sites)])
            counts["requests"] += 1
            if report.ok:
                counts["ok"] += 1
            i += 1
    finally:
        client.close()


def test_fleet_serving_holds_floors(fleet_manifest, house, test_points):
    observations = house.observe_all(test_points, rng=5, dwell_s=5.0)
    docs = [observation_doc(o) for o in observations]
    hot = [f"site-{i:02d}" for i in range(N_HOT)]
    cold = [f"site-{i:02d}" for i in range(N_HOT, N_SITES)]

    registry = ModelRegistry(fleet_manifest, capacity=CAPACITY)
    with LocalizationHTTPServer(
        registry=registry, max_batch=64, max_wait_ms=2.0, max_queue=4096
    ) as server:
        # Warmup: load the hot models once, spin up client connections.
        run_load(server.port, docs, N_WORKERS, WARMUP_PER_WORKER, sites=hot)
        base = registry.status()

        warm_wall, warm_reports = run_load(
            server.port, docs, N_WORKERS, REQUESTS_PER_WORKER, sites=hot
        )
        after_warm = registry.status()

        stop = threading.Event()
        churn_counts = {"requests": 0, "ok": 0}
        churner = threading.Thread(
            target=_churn_cold_sites,
            args=(server.port, docs[0], cold, stop, churn_counts),
        )
        churner.start()
        try:
            mixed_wall, mixed_reports = run_load(
                server.port, docs, N_WORKERS, REQUESTS_PER_WORKER, sites=hot
            )
        finally:
            stop.set()
            churner.join(timeout=60.0)
        final = registry.status()

    warm = summarize("warm-cache", warm_wall, warm_reports,
                     workers=N_WORKERS, hot_sites=N_HOT)
    mixed = summarize("hot-under-churn", mixed_wall, mixed_reports,
                      workers=N_WORKERS, hot_sites=N_HOT)
    for label, reports in (("warm", warm_reports), ("mixed", mixed_reports)):
        bad = [r for r in reports if not r.ok or not (r.doc or {}).get("valid")]
        assert not bad, (
            f"{label}: non-ok/invalid answers under load: "
            f"{[(r.category, r.status) for r in bad[:5]]}"
        )

    warm_misses = after_warm["misses"] - base["misses"]
    evictions = final["evictions"] - after_warm["evictions"]
    loads = final["loads"] - after_warm["loads"]
    p99_floor = max(warm["p99_ms"], P99_NOISE_FLOOR_MS)
    ratio = mixed["p99_ms"] / p99_floor

    lines = [
        f"Fleet of {N_SITES} sites, registry capacity {CAPACITY}, "
        f"{N_WORKERS} workers on {N_HOT} hot sites",
        f"{'phase':<16s}{'req/s':>9s}{'p50 ms':>9s}{'p99 ms':>9s}{'ok':>7s}",
    ]
    for r in (warm, mixed):
        lines.append(
            f"{r['label']:<16s}{r['rps']:>9.1f}{r['p50_ms']:>9.1f}"
            f"{r['p99_ms']:>9.1f}{r['error_budget']['ok']:>7d}"
        )
    lines.append(
        f"churn: {churn_counts['requests']} cold requests, "
        f"{loads} loads, {evictions} evictions during mixed phase"
    )
    lines.append(
        f"hot p99 under churn: {ratio:.2f}x warm "
        f"(ceiling {MAX_MIXED_P99_RATIO:.1f}x); cache-hit floor "
        f"{MIN_CACHE_HIT_RPS:.0f} req/s"
    )
    record("BENCH-SITES", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_SITES.json").write_text(
        json.dumps(
            {
                "bench": "sites",
                "sites": N_SITES,
                "capacity": CAPACITY,
                "hot_sites": N_HOT,
                "warm": warm,
                "mixed": mixed,
                "churn": dict(churn_counts, loads=loads, evictions=evictions),
                "registry": {
                    k: final[k]
                    for k in ("hits", "misses", "coalesced", "loads", "evictions")
                },
                "mixed_p99_ratio": round(ratio, 3),
                "floors": {
                    "cache_hit_rps": MIN_CACHE_HIT_RPS,
                    "mixed_p99_ratio": MAX_MIXED_P99_RATIO,
                    "p99_noise_floor_ms": P99_NOISE_FLOOR_MS,
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    assert warm_misses == 0, (
        f"warm phase took {warm_misses} registry misses — the hot working "
        f"set does not fit the cache, the bench is not measuring hits"
    )
    assert evictions >= 1 and loads >= 1, (
        f"churner forced no evictions ({evictions}) or loads ({loads}) — "
        f"the mixed phase never exercised cold-site reload"
    )
    assert warm["rps"] >= MIN_CACHE_HIT_RPS, (
        f"cache-hit throughput {warm['rps']:.0f} req/s below the "
        f"{MIN_CACHE_HIT_RPS:.0f} req/s floor (0.9x the single-site floor)"
    )
    assert ratio <= MAX_MIXED_P99_RATIO, (
        f"hot-site p99 stretched {ratio:.2f}x under cold-site churn "
        f"(warm {warm['p99_ms']:.1f} ms -> mixed {mixed['p99_ms']:.1f} ms; "
        f"ceiling {MAX_MIXED_P99_RATIO:.1f}x)"
    )
