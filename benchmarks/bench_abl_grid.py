"""ABL-GRID — training-grid density ablation.

The §5 protocol trains at 10-ft multiples.  Sweeping the grid step
separates the two approaches' dependence on survey effort: the
fingerprinting methods' answers are (at best) grid points, so their
error tracks the grid pitch, while the geometric approach only uses the
grid to fit four regression curves and barely cares.

Valid-estimation tolerance is held at the paper's 10 ft for all steps
so rates stay comparable.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.runner import run_protocol
from repro.parallel.rng import stable_seed

STEPS = [5.0, 10.0, 20.0]


def run_cells():
    rows = []
    for step in STEPS:
        house = ExperimentHouse(HouseConfig(grid_step_ft=step, dwell_s=30.0))
        for alg in ("probabilistic", "geometric", "knn"):
            devs, rates = [], []
            for rep in range(3):
                r = run_protocol(
                    alg, house=house, rng=stable_seed("abl-grid", step, alg, rep),
                    tolerance_ft=10.0,
                )
                devs.append(r.metrics.mean_deviation_ft)
                rates.append(r.metrics.valid_rate)
            rows.append(
                {
                    "step": step,
                    "algorithm": alg,
                    "n_train": len(house.training_points()),
                    "mean_deviation_ft": float(np.mean([d for d in devs if np.isfinite(d)])),
                    "valid_rate": float(np.mean(rates)),
                }
            )
    return rows


def test_abl_grid_density(benchmark):
    rows = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    lines = ["Training-grid density ablation (10 ft validity tolerance)"]
    lines.append(f"{'step_ft':>8s} {'n_train':>8s} {'algorithm':<14s} {'valid%':>7s} {'mean_ft':>8s}")
    for row in rows:
        lines.append(
            f"{row['step']:>8.0f} {row['n_train']:>8d} {row['algorithm']:<14s} "
            f"{100 * row['valid_rate']:>6.1f}% {row['mean_deviation_ft']:>8.2f}"
        )
    record("ABL-GRID", "\n".join(lines))

    by = {(r["step"], r["algorithm"]): r for r in rows}
    # Fingerprinting improves with a denser grid...
    assert by[(5.0, "probabilistic")]["mean_deviation_ft"] < by[(20.0, "probabilistic")]["mean_deviation_ft"]
    assert by[(5.0, "knn")]["mean_deviation_ft"] < by[(20.0, "knn")]["mean_deviation_ft"]

    # ...while the geometric approach's *relative* swing across the same
    # 4x density range is smaller than the most grid-bound method's (kNN
    # answers live on the grid; geometry only fits 4 curves from it).
    def swing(alg):
        vals = [by[(s, alg)]["mean_deviation_ft"] for s in STEPS]
        return max(vals) / min(vals)

    assert swing("geometric") < swing("knn")
