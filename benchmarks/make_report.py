#!/usr/bin/env python3
"""Stitch benchmarks/results/*.txt into one RESULTS.md report.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/make_report.py
"""

import json
import sys
from pathlib import Path

ORDER = [
    "EXP5.1", "EXP5.2", "FIG2", "FIG3", "FIG4", "TAB-DB", "CMP-ALL",
    "ABL-NOISE", "ABL-GRID", "ABL-APS", "ABL-WINDOW", "ABL-DEVICE",
    "ABL-FACTORS", "ABL-MAP", "EXT-TRACK", "EXT-UWB", "EXT-PLAN",
    "EXT-CONF", "EXT-CRLB", "GEN-SITES", "PERF-BATCH", "OBS-OVERHEAD",
]


def main() -> None:
    results = Path(__file__).parent / "results"
    out = [
        "# Benchmark results",
        "",
        "Regenerate with `pytest benchmarks/ --benchmark-only` followed by",
        "`python benchmarks/make_report.py`.  EXPERIMENTS.md interprets",
        "these numbers against the paper.",
        "",
    ]
    seen = set()
    for exp in ORDER + sorted(p.stem for p in results.glob("*.txt")):
        path = results / f"{exp}.txt"
        if exp in seen or not path.is_file():
            continue
        seen.add(exp)
        out.append(f"## {exp}")
        out.append("")
        out.append("```")
        body = path.read_text(encoding="utf-8").splitlines()
        out.extend(body[1:])  # drop the == EXP == banner
        out.append("```")
        out.append("")

    metrics_path = results / "metrics.json"
    if metrics_path.is_file():
        # Pipeline metrics accumulated across the whole bench run
        # (written by conftest.pytest_sessionfinish).
        sys.path.insert(0, str(results.parent.parent / "src"))
        from repro.obs import render_text

        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        summary = render_text(snapshot)
        print(summary)
        out.append("## Pipeline metrics (repro.obs)")
        out.append("")
        out.append("```")
        out.extend(summary.splitlines())
        out.append("```")
        out.append("")

        quality = {
            section: {
                series: value
                for series, value in snapshot.get(section, {}).items()
                if series.startswith("quality.")
            }
            for section in ("counters", "gauges", "histograms")
        }
        if any(quality.values()):
            # Data-quality telemetry pulled out of the flood: drift
            # alerts, degraded-mode answers, estimation confidence —
            # the first place to look when accuracy numbers move.
            out.append("## Quality telemetry (quality.*)")
            out.append("")
            out.append("```")
            out.extend(render_text(quality).splitlines())
            out.append("```")
            out.append("")

    target = results.parent / "RESULTS.md"
    target.write_text("\n".join(out), encoding="utf-8")
    print(f"wrote {target} ({len(seen)} experiments)")


if __name__ == "__main__":
    main()
