"""TAB-DB — the §4.3 training-database claims, measured.

"Training databases … are easier to work with than wi-scan file
collections and location maps because they are compressed, which makes
them easier to move and transmit over a network, and they can be loaded
into memory more quickly than reading multiple wi-scan files line by
line."

This bench measures exactly those two claims for the §5 survey (30
locations × 90 s): on-disk size of the wi-scan directory vs the zip vs
the ``.tdb``, and load time of each path.  The timed benchmark is the
``.tdb`` load (the paper's fast path); the comparison rows time the
slow paths once.
"""

from __future__ import annotations

import time

from conftest import record

from repro.core.trainingdb import TrainingDatabase, generate_training_db
from repro.wiscan.collection import WiScanCollection


def test_tabdb_size_and_load_time(benchmark, house, training_db, tmp_path):
    survey = house.survey(rng=0)
    survey_dir = tmp_path / "survey"
    survey.save_directory(survey_dir)
    zip_path = survey.save_zip(tmp_path / "survey.zip")
    tdb_path = tmp_path / "training.tdb"
    lm = house.location_map()
    generate_training_db(survey, lm, output=tdb_path)

    dir_size = sum(p.stat().st_size for p in survey_dir.glob("*.wi-scan"))
    zip_size = zip_path.stat().st_size
    tdb_size = tdb_path.stat().st_size

    def timed(fn, *args):
        t0 = time.perf_counter()
        out = fn(*args)
        return out, time.perf_counter() - t0

    lm_path = tmp_path / "map.txt"
    lm.save(lm_path)
    _, t_dir = timed(generate_training_db, survey_dir, lm_path)
    _, t_zip = timed(generate_training_db, zip_path, lm_path)

    loaded = benchmark(TrainingDatabase.load, tdb_path)
    _, t_tdb = timed(TrainingDatabase.load, tdb_path)

    assert loaded.total_samples() == training_db.total_samples()
    assert tdb_size < zip_size < dir_size
    assert t_tdb < t_dir

    record(
        "TAB-DB",
        "Training database vs raw wi-scan collection (30 locations x 90 s)\n"
        f"{'form':<28s}{'bytes':>10s}{'load (ms)':>12s}\n"
        f"{'wi-scan directory':<28s}{dir_size:>10d}{1000 * t_dir:>12.2f}\n"
        f"{'wi-scan zip':<28s}{zip_size:>10d}{1000 * t_zip:>12.2f}\n"
        f"{'.tdb training database':<28s}{tdb_size:>10d}{1000 * t_tdb:>12.2f}\n"
        f"compression vs directory: {dir_size / tdb_size:.1f}x smaller; "
        f"load speedup vs line-by-line parse: {t_dir / t_tdb:.1f}x\n"
        "paper claim (qualitative): compressed and faster to load — both hold",
    )
