"""BENCH-SERVE — closed-loop load against the micro-batching service.

The serving-layer acceptance criterion: concurrent single-shot clients
against ``POST /v1/locate`` must get ≥ 2x the throughput with
micro-batching enabled (requests coalesced into one ``locate_many``
dispatch) versus batch-size-1 serving — same model, same wire format,
same admission control, only the coalescing window differs.

Load comes from ``loadgen`` — the same :class:`repro.serve.client`
-based generator BENCH-RESILIENCE uses — so both benches share one
client and one result schema, including the ``error_budget`` breakdown
(2xx / 429 / 504 / transport error).  Under this bench's sizing the
budget must be all-ok: anything else is a failure, not a statistic.

Numbers land machine-readable in ``benchmarks/results/BENCH_SERVE.json``
alongside the paper-style table.
"""

from __future__ import annotations

import json

from conftest import RESULTS_DIR, record
from loadgen import observation_doc, run_load, summarize

from repro.serve import LocalizationHTTPServer, LocalizationService

N_WORKERS = 32
REQUESTS_PER_WORKER = 40
WARMUP_PER_WORKER = 3

#: Acceptance floors.  Micro-batching rides the vectorized locate_many
#: kernels (4-9x in BENCH_PERF), so 2x end-to-end — HTTP, JSON and
#: queueing included — is the criterion, not an aspiration.  The
#: absolute floor is deliberately conservative (CI machines vary);
#: the reference machine does ~500 -> ~1400 req/s (2.9x).
MIN_SPEEDUP = 2.0
MIN_BATCHED_RPS = 150.0


def _measure(service, docs, *, max_batch, max_wait_ms, label):
    with LocalizationHTTPServer(
        service, max_batch=max_batch, max_wait_ms=max_wait_ms, max_queue=4096
    ) as server:
        # Warmup: populate caches, spin up worker connections once.
        run_load(server.port, docs, N_WORKERS, WARMUP_PER_WORKER)
        wall, reports = run_load(server.port, docs, N_WORKERS, REQUESTS_PER_WORKER)
    result = summarize(
        label, wall, reports,
        max_batch=max_batch, max_wait_ms=max_wait_ms, workers=N_WORKERS,
    )
    bad = [r for r in reports if not r.ok or not (r.doc or {}).get("valid")]
    assert not bad, (
        f"{label}: non-ok/invalid answers under load "
        f"(budget {result['error_budget']}): "
        f"{[(r.category, r.status) for r in bad[:5]]}"
    )
    return result


def test_serve_load_microbatching_speedup(house, training_db, test_points):
    service = LocalizationService(
        training_db,
        ap_positions=house.ap_positions_by_bssid(),
        bounds=house.bounds(),
    )
    observations = house.observe_all(test_points, rng=5, dwell_s=5.0)
    docs = [observation_doc(o) for o in observations]

    unbatched = _measure(
        service, docs, max_batch=1, max_wait_ms=0.0, label="batch-size-1"
    )
    batched = _measure(
        service, docs, max_batch=64, max_wait_ms=2.0, label="micro-batched"
    )
    speedup = batched["rps"] / unbatched["rps"]

    lines = [
        f"Closed-loop /v1/locate load: {N_WORKERS} keep-alive workers, "
        f"{N_WORKERS * REQUESTS_PER_WORKER} requests per run",
        f"{'serving mode':<16s}{'req/s':>9s}{'p50 ms':>9s}{'p99 ms':>9s}{'ok':>7s}",
    ]
    for r in (unbatched, batched):
        lines.append(
            f"{r['label']:<16s}{r['rps']:>9.1f}{r['p50_ms']:>9.1f}"
            f"{r['p99_ms']:>9.1f}{r['error_budget']['ok']:>7d}"
        )
    lines.append(f"micro-batching speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)")
    record("BENCH-SERVE", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_SERVE.json").write_text(
        json.dumps(
            {
                "unbatched": unbatched,
                "batched": batched,
                "speedup": round(speedup, 3),
                "floors": {"speedup": MIN_SPEEDUP, "batched_rps": MIN_BATCHED_RPS},
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching speedup {speedup:.2f}x below the {MIN_SPEEDUP:.1f}x floor "
        f"({unbatched['rps']:.0f} -> {batched['rps']:.0f} req/s)"
    )
    assert batched["rps"] >= MIN_BATCHED_RPS, (
        f"batched throughput {batched['rps']:.0f} req/s below the "
        f"{MIN_BATCHED_RPS:.0f} req/s floor"
    )
