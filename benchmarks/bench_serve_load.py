"""BENCH-SERVE — closed-loop load against the micro-batching service.

The serving-layer acceptance criterion: concurrent single-shot clients
against ``POST /v1/locate`` must get ≥ 2x the throughput with
micro-batching enabled (requests coalesced into one ``locate_many``
dispatch) versus batch-size-1 serving — same model, same wire format,
same admission control, only the coalescing window differs.

The load generator is closed-loop: W workers, each holding one
keep-alive HTTP/1.1 connection, each submitting its next request only
after the previous answer arrives — the shape of real interactive
clients, and the regime micro-batching is designed for (concurrency
creates batches; an open-loop firehose would just overflow the queue).

Numbers land machine-readable in ``benchmarks/results/BENCH_SERVE.json``
alongside the paper-style table.
"""

from __future__ import annotations

import http.client
import json
import statistics
import threading
import time

from conftest import RESULTS_DIR, record

from repro.serve import LocalizationHTTPServer, LocalizationService

N_WORKERS = 32
REQUESTS_PER_WORKER = 40
WARMUP_PER_WORKER = 3

#: Acceptance floors.  Micro-batching rides the vectorized locate_many
#: kernels (4-9x in BENCH_PERF), so 2x end-to-end — HTTP, JSON and
#: queueing included — is the criterion, not an aspiration.  The
#: absolute floor is deliberately conservative (CI machines vary);
#: the reference machine does ~500 -> ~1400 req/s (2.9x).
MIN_SPEEDUP = 2.0
MIN_BATCHED_RPS = 150.0


def _observation_doc(observation):
    return {
        "samples": [
            [None if v != v else v for v in row]
            for row in observation.samples.tolist()
        ],
        "bssids": list(observation.bssids),
    }


def _worker(host, port, bodies, n_requests, start_gate, latencies, errors, wid):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        start_gate.wait()
        mine = []
        for i in range(n_requests):
            body = bodies[(wid + i) % len(bodies)]
            t0 = time.perf_counter()
            conn.request(
                "POST", "/v1/locate", body, {"Content-Type": "application/json"}
            )
            resp = conn.getresponse()
            payload = resp.read()
            dt = time.perf_counter() - t0
            if resp.status != 200 or not json.loads(payload).get("valid"):
                errors.append((wid, i, resp.status))
            mine.append(dt)
        latencies.extend(mine)
    finally:
        conn.close()


def _run_load(server, bodies, n_workers, n_requests):
    """Closed-loop run; returns wall time and per-request latencies."""
    start_gate = threading.Event()
    latencies, errors = [], []
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                "127.0.0.1",
                server.port,
                bodies,
                n_requests,
                start_gate,
                latencies,
                errors,
                wid,
            ),
        )
        for wid in range(n_workers)
    ]
    for t in threads:
        t.start()
    t0 = time.perf_counter()
    start_gate.set()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not errors, f"non-200/invalid answers under load: {errors[:5]}"
    return wall, latencies


def _measure(service, bodies, *, max_batch, max_wait_ms, label):
    with LocalizationHTTPServer(
        service, max_batch=max_batch, max_wait_ms=max_wait_ms, max_queue=4096
    ) as server:
        # Warmup: populate caches, spin up worker connections once.
        _run_load(server, bodies, N_WORKERS, WARMUP_PER_WORKER)
        wall, latencies = _run_load(server, bodies, N_WORKERS, REQUESTS_PER_WORKER)
    n = N_WORKERS * REQUESTS_PER_WORKER
    latencies.sort()
    return {
        "label": label,
        "max_batch": max_batch,
        "max_wait_ms": max_wait_ms,
        "requests": n,
        "workers": N_WORKERS,
        "wall_s": round(wall, 3),
        "rps": round(n / wall, 1),
        "p50_ms": round(1000 * statistics.median(latencies), 2),
        "p99_ms": round(1000 * latencies[int(0.99 * (len(latencies) - 1))], 2),
    }


def test_serve_load_microbatching_speedup(house, training_db, test_points):
    service = LocalizationService(
        training_db,
        ap_positions=house.ap_positions_by_bssid(),
        bounds=house.bounds(),
    )
    observations = house.observe_all(test_points, rng=5, dwell_s=5.0)
    bodies = [
        json.dumps(_observation_doc(o)).encode("utf-8") for o in observations
    ]

    unbatched = _measure(
        service, bodies, max_batch=1, max_wait_ms=0.0, label="batch-size-1"
    )
    batched = _measure(
        service, bodies, max_batch=64, max_wait_ms=2.0, label="micro-batched"
    )
    speedup = batched["rps"] / unbatched["rps"]

    lines = [
        f"Closed-loop /v1/locate load: {N_WORKERS} keep-alive workers, "
        f"{N_WORKERS * REQUESTS_PER_WORKER} requests per run",
        f"{'serving mode':<16s}{'req/s':>9s}{'p50 ms':>9s}{'p99 ms':>9s}",
    ]
    for r in (unbatched, batched):
        lines.append(
            f"{r['label']:<16s}{r['rps']:>9.1f}{r['p50_ms']:>9.1f}{r['p99_ms']:>9.1f}"
        )
    lines.append(f"micro-batching speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)")
    record("BENCH-SERVE", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_SERVE.json").write_text(
        json.dumps(
            {
                "unbatched": unbatched,
                "batched": batched,
                "speedup": round(speedup, 3),
                "floors": {"speedup": MIN_SPEEDUP, "batched_rps": MIN_BATCHED_RPS},
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching speedup {speedup:.2f}x below the {MIN_SPEEDUP:.1f}x floor "
        f"({unbatched['rps']:.0f} -> {batched['rps']:.0f} req/s)"
    )
    assert batched["rps"] >= MIN_BATCHED_RPS, (
        f"batched throughput {batched['rps']:.0f} req/s below the "
        f"{MIN_BATCHED_RPS:.0f} req/s floor"
    )
