"""FIG4 — Figure 4: signal strength vs. distance with the §5.2 fit.

The paper plots per-AP signal strength against distance and fits
``SS = a/d² + b/d + c`` by least squares (their example formula for one
AP appears in equation (2); the archived text corrupts the constant).
This bench regenerates the figure's data: for each AP, the (distance,
mean SS) training pairs, the fitted coefficients, R² and RMSE, plus a
coarse ASCII rendering of the fitted curve.  Timing covers the full
four-AP regression (the Phase-1 geometric computation).
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.algorithms.regression import fit_per_ap
from repro.radio.pathloss import dbm_to_ss_units


def ascii_curve(model, d_lo=5.0, d_hi=64.0, width=56, height=10):
    """A small ASCII scatter of the fitted SS(d) curve."""
    d = np.linspace(d_lo, d_hi, width)
    ss = model.ss(d)
    lo, hi = float(ss.min()), float(ss.max())
    rows = [[" "] * width for _ in range(height)]
    for i, v in enumerate(ss):
        level = 0 if hi == lo else int((v - lo) / (hi - lo) * (height - 1))
        rows[height - 1 - level][i] = "*"
    return "\n".join("".join(r) for r in rows)


def test_fig4_ss_distance_regression(benchmark, house, training_db):
    ap_positions = house.ap_positions_by_bssid()

    fits = benchmark(fit_per_ap, training_db, ap_positions)

    assert len(fits) == 4
    lines = ["Per-AP least-squares fits of SS = a/d^2 + b/d + c (paper eq. 2)"]
    positions = training_db.positions()
    means = training_db.mean_matrix()
    for j, bssid in enumerate(training_db.bssids):
        fit = fits[bssid]
        ap = ap_positions[bssid]
        name = house.aps[j].name
        d = np.hypot(positions[:, 0] - ap.x, positions[:, 1] - ap.y)
        ss = dbm_to_ss_units(means[:, j])
        lines.append(
            f"AP {name}: {fit.formula()}   R^2={fit.r_squared:.3f} "
            f"RMSE={fit.rmse:.2f} SS-units  n={fit.n_points}"
        )
        if j == 0:
            lines.append(f"fitted curve for AP {name} (SS vs d, {5:.0f}-{64:.0f} ft):")
            lines.append(ascii_curve(fit.model))
        # The figure's qualitative content: SS decays with distance.
        order = np.argsort(d)
        near = np.nanmean(ss[order[:8]])
        far = np.nanmean(ss[order[-8:]])
        assert near > far, f"AP {name}: SS must decay with distance"
    lines.append(
        "paper: one example fit 'SS = 3558.2/d^2 - 484.76/d + …' (constant "
        "corrupted in archive); shape target = monotone decay + decent fit, "
        "both reproduced"
    )
    record("FIG4", "\n".join(lines))
