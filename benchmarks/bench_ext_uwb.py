"""EXT-UWB — future work §6.3: UWB time-of-arrival vs RSSI ranging.

The paper proposes UWB as the cure for RSSI instability: "the burst
duration is so short that … there is little or no signal loss due to
fading, scattering and reflection."  This bench co-locates UWB anchors
with the four APs, ranges the 13 test points, solves positions with the
same multilateration machinery the RSSI pipeline uses, and compares.

Expected shape: UWB error is an order of magnitude below every RSSI
approach — sub-foot LOS ranging vs several-dB shadowing.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.algorithms.multilateration import solve_multilateration
from repro.experiments.runner import run_protocol
from repro.radio.uwb import UWBRangingSimulator


def test_ext_uwb_vs_rssi(benchmark, house, training_db, test_points):
    uwb = UWBRangingSimulator.colocated_with(house.environment)
    anchor_pos = {a.name: a.position for a in uwb.anchors}

    def locate_uwb(point, rng):
        ms = uwb.range_averaged(point, rounds=10, rng=rng)
        anchors = [anchor_pos[m.anchor] for m in ms]
        return solve_multilateration(anchors, [m.distance_ft for m in ms])

    benchmark(locate_uwb, test_points[0], 0)

    uwb_errors = []
    rng_seed = 100
    for i, p in enumerate(test_points):
        est = locate_uwb(p, rng_seed + i)
        uwb_errors.append(est.distance_to(p))
    uwb_mean = float(np.mean(uwb_errors))

    rssi_rows = []
    for alg in ("probabilistic", "geometric", "multilateration"):
        r = run_protocol(alg, house=house, rng=0, training_db=training_db)
        rssi_rows.append((alg, r.metrics.mean_deviation_ft))

    lines = ["UWB TOA vs RSSI approaches (13 test points)"]
    lines.append(f"{'uwb toa + multilateration':<28s} mean error {uwb_mean:6.2f} ft")
    for alg, err in rssi_rows:
        lines.append(f"{'rssi ' + alg:<28s} mean error {err:6.2f} ft")
    lines.append(
        f"shape: UWB beats the best RSSI method by "
        f"{min(e for _, e in rssi_rows) / uwb_mean:.1f}x"
    )
    record("EXT-UWB", "\n".join(lines))

    assert uwb_mean < 2.0  # sub-2ft: the UWB promise
    assert all(uwb_mean < err / 3 for _, err in rssi_rows)
