"""FIG3 — Figure 3: "The floor plan in display" by the Compositor.

The paper shows the Compositor rendering a floor plan with testing
locations and their estimated counterparts.  This bench regenerates
exactly that view for the §5 protocol: the annotated house plan, the 13
true test locations (+ marks) and the probabilistic estimates (× marks)
with error lines.  Timing covers one full composited render.
"""

from __future__ import annotations

from conftest import record

from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.core.compositor import EstimatePair, FloorPlanCompositor
from repro.imaging.gif import write_gif


def test_fig3_compositor_render(benchmark, house, training_db, test_points, observations, tmp_path):
    localizer = ProbabilisticLocalizer().fit(training_db)
    pairs = [
        EstimatePair(p, localizer.locate(o).position, label=f"T{i + 1}")
        for i, (p, o) in enumerate(zip(test_points, observations))
    ]
    plan = house.floor_plan()
    compositor = FloorPlanCompositor(plan)

    image = benchmark(compositor.render, pairs=pairs)

    out = tmp_path / "figure3.gif"
    write_gif(out, image)
    mean_err = sum(p.error_ft for p in pairs) / len(pairs)
    record(
        "FIG3",
        "Floor Plan Compositor test view (paper Figure 3)\n"
        f"rendered: {image.width}x{image.height}px, {len(pairs)} true/estimate "
        f"pairs, legend + scale bar\n"
        f"mean drawn error line: {mean_err:.2f} ft\n"
        f"artifact: {out.name} ({out.stat().st_size} bytes)\n"
        "paper: screenshot of the same view (marks for testing locations and "
        "algorithm estimates)",
    )
    assert image.width == plan.image.width
