"""OBS-OVERHEAD — instrumentation must cost <5 % on the PERF-BATCH path.

The observability layer (metric counters, latency histograms, span
plumbing in ``Localizer.locate_many``) rides on every request, so its
cost has to be provably negligible before any perf PR can trust the
numbers it reports.  This bench times the PERF-BATCH workload three
ways:

* **raw** — the unwrapped implementation (``locate_many.__wrapped__``),
  exactly what ran before instrumentation existed;
* **instrumented** — the public path, metrics enabled (the default);
* **disabled** — the public path with ``obs.set_enabled(False)``, the
  degraded mode a latency-critical deployment could choose.

Best-of-N timing on both sides squeezes out scheduler noise; the gate
is instrumented/raw < 1.05.  Run standalone (CI check mode) with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import time

from conftest import record

from repro import obs
from repro.algorithms.probabilistic import ProbabilisticLocalizer

N_OBSERVATIONS = 400
REPEATS = 9
MAX_OVERHEAD = 0.05


def _best_of(fn, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_obs_overhead_under_5_percent(house, training_db, test_points):
    observations = house.observe_all(
        list(test_points) * (N_OBSERVATIONS // len(test_points) + 1),
        rng=7,
        dwell_s=5.0,
    )[:N_OBSERVATIONS]

    loc = ProbabilisticLocalizer().fit(training_db)
    raw_fn = type(loc).locate_many.__wrapped__

    # Warm both paths (allocator, caches) before timing.
    raw_fn(loc, observations)
    loc.locate_many(observations)

    t_raw = _best_of(lambda: raw_fn(loc, observations))
    t_instr = _best_of(lambda: loc.locate_many(observations))
    previous = obs.set_enabled(False)
    try:
        t_disabled = _best_of(lambda: loc.locate_many(observations))
    finally:
        obs.set_enabled(previous)

    overhead = t_instr / t_raw - 1.0
    overhead_disabled = t_disabled / t_raw - 1.0

    lines = [
        f"Instrumentation overhead on PERF-BATCH ({N_OBSERVATIONS} obs, best of {REPEATS})",
        f"{'path':<22s}{'ms':>10s}{'overhead':>10s}",
        f"{'raw (unwrapped)':<22s}{1000 * t_raw:>10.2f}{'—':>10s}",
        f"{'instrumented':<22s}{1000 * t_instr:>10.2f}{100 * overhead:>9.1f}%",
        f"{'obs disabled':<22s}{1000 * t_disabled:>10.2f}{100 * overhead_disabled:>9.1f}%",
    ]
    record("OBS-OVERHEAD", "\n".join(lines))

    assert overhead < MAX_OVERHEAD, (
        f"instrumented PERF-BATCH path is {100 * overhead:.1f}% slower than raw "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)"
    )


def test_obs_overhead_under_sharding(house, training_db, test_points):
    """The worker-delta merge must not blow the budget on sharded batches.

    Sharded runs additionally serialize each worker's registry delta and
    fold it into the parent (``repro.parallel.pool._fold_deltas``).  We
    time the same sharded workload with obs enabled vs disabled — the
    pool's own process-spawn noise is identical on both sides, so the
    ratio isolates the telemetry round trip.  The gate is looser than
    the serial 5% one only because pool timing is noisier, not because
    the merge is allowed to cost more: the merge itself is a handful of
    dict folds per chunk.
    """
    from repro.algorithms.engine import BatchConfig, set_batch_config
    from repro.parallel.pool import ParallelConfig

    n = 2048
    observations = house.observe_all(
        list(test_points) * (n // len(test_points) + 1), rng=11, dwell_s=5.0
    )[:n]
    loc = ProbabilisticLocalizer().fit(training_db)

    sharded = BatchConfig(
        chunk_size=256,
        shard_threshold=1024,
        parallel=ParallelConfig(max_workers=2),
    )
    previous_cfg = set_batch_config(sharded)
    try:
        loc.locate_many(observations)  # warm the pool + both paths
        t_enabled = _best_of(lambda: loc.locate_many(observations), repeats=5)
        merged = obs.counter("parallel.deltas_merged", kind="map").value
        prev_enabled = obs.set_enabled(False)
        try:
            t_disabled = _best_of(lambda: loc.locate_many(observations), repeats=5)
        finally:
            obs.set_enabled(prev_enabled)
    finally:
        set_batch_config(previous_cfg)

    overhead = t_enabled / t_disabled - 1.0
    lines = [
        f"Telemetry merge overhead under sharding ({n} obs, 2 workers, best of 5)",
        f"{'path':<22s}{'ms':>10s}{'overhead':>10s}",
        f"{'obs disabled':<22s}{1000 * t_disabled:>10.2f}{'—':>10s}",
        f"{'obs + delta merge':<22s}{1000 * t_enabled:>10.2f}{100 * overhead:>9.1f}%",
        f"worker deltas merged: {merged}",
    ]
    record("OBS-SHARD-OVERHEAD", "\n".join(lines))

    # The enabled runs really exercised the merge path.
    assert merged > 0, "sharded run produced no worker deltas — merge path not covered"
    assert overhead < 0.10, (
        f"sharded telemetry round trip costs {100 * overhead:.1f}% "
        f"(budget 10%)"
    )


def test_tracing_overhead_under_5_percent(house, training_db, test_points):
    """Request tracing (context + recorder, sampling on) rides the gate.

    The traced-serving scenario: every request runs under a bound
    :class:`~repro.obs.TraceContext` with the flight recorder installed
    and ``sample_every=1`` (the worst case — production can sample
    down, the bench must not).  Per request that is an edge span, a
    recorder begin/record/finish, and an exemplar-carrying histogram
    observation — everything ``serve.http`` adds around the kernel.
    The baseline is the same kernel with no context bound, which is
    the same code path every non-serving caller takes.
    """
    from repro.obs.trace import FlightRecorder, TraceContext

    observations = house.observe_all(
        list(test_points) * (N_OBSERVATIONS // len(test_points) + 1),
        rng=13,
        dwell_s=5.0,
    )[:N_OBSERVATIONS]
    loc = ProbabilisticLocalizer().fit(training_db)

    def untraced():
        loc.locate_many(observations)

    def traced():
        recorder = FlightRecorder(sample_every=1)
        previous = obs.set_recorder(recorder)
        try:
            ctx = TraceContext.mint()
            recorder.begin(ctx, endpoint="locate_batch")
            with obs.bind(ctx):
                with obs.span("serve.request", endpoint="locate_batch"):
                    loc.locate_many(observations)
            recorder.finish(ctx.trace_id, status="ok")
            obs.histogram("serve.http_latency_ms", endpoint="locate_batch").observe(
                1.0, trace_id=ctx.trace_id
            )
        finally:
            obs.set_recorder(previous)

    untraced()
    traced()  # warm both paths
    t_untraced = _best_of(untraced)
    t_traced = _best_of(traced)

    overhead = t_traced / t_untraced - 1.0
    lines = [
        f"Tracing overhead on PERF-BATCH ({N_OBSERVATIONS} obs, best of {REPEATS})",
        f"{'path':<22s}{'ms':>10s}{'overhead':>10s}",
        f"{'untraced':<22s}{1000 * t_untraced:>10.2f}{'—':>10s}",
        f"{'traced + recorder':<22s}{1000 * t_traced:>10.2f}{100 * overhead:>9.1f}%",
    ]
    record("OBS-TRACE-OVERHEAD", "\n".join(lines))

    assert overhead < MAX_OVERHEAD, (
        f"traced serving path is {100 * overhead:.1f}% slower than untraced "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)"
    )
