"""EXT-PLAN — §6.4 toolkit expansion: AP placement optimization.

The paper simply "set up four 802.11b APs at the four corners".  The
planning package asks whether that is the right layout.  Two objectives
are compared (this doubles as an ablation of the objective itself):

* **damage** (alias-aware): minimize the worst pairwise expected damage
  ``distance(i,j) × P(confuse i,j)`` over all grid pairs;
* **separability**: maximize minimum-neighbour d′ — blind to distant
  aliasing, which symmetric interior layouts create.

Both optimized layouts and the paper's corner baseline then run the
full §5 protocol.  Expected shapes: the damage-optimized layout beats
the corners on its own objective and does not lose end-to-end; the
separability-optimized layout scores higher *locally* but pays for
aliasing end-to-end — the cautionary half of the finding.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.runner import run_protocol
from repro.planning.placement import (
    _objective_factory,
    corner_placement,
    optimize_placement,
)
from repro.radio.environment import AccessPoint, EnvironmentalFactors, RadioEnvironment
from repro.radio.fading import TemporalFading
from repro.radio.pathloss import LogDistanceModel
from repro.radio.scanner import SimulatedScanner


def house_with_aps(positions):
    house = ExperimentHouse(HouseConfig(dwell_s=30.0))
    cfg = house.config
    house.aps = [
        AccessPoint(name=chr(ord("A") + i), position=p, channel=(1, 6, 11)[i % 3])
        for i, p in enumerate(positions)
    ]
    house.environment = RadioEnvironment(
        house.aps,
        walls=house.environment.walls,
        pathloss=LogDistanceModel(exponent=cfg.pathloss_exponent),
        shadowing_sigma_db=cfg.shadowing_sigma_db,
        shadowing_correlation_ft=cfg.shadowing_correlation_ft,
        fading=TemporalFading(
            sigma_db=cfg.temporal_sigma_db,
            timescale_s=cfg.temporal_timescale_s,
            noise_db=cfg.noise_db,
        ),
        factors=EnvironmentalFactors(),
        miss_probability=cfg.miss_probability,
        seed=cfg.site_seed,
    )
    house.scanner = SimulatedScanner(house.environment, interval_s=cfg.scan_interval_s)
    return house


def protocol_mean(house, alg, n_runs=6):
    vals, rates = [], []
    for seed in range(n_runs):
        r = run_protocol(alg, house=house, rng=seed)
        vals.append(r.metrics.mean_deviation_ft)
        rates.append(r.metrics.valid_rate)
    return float(np.mean(vals)), float(np.mean(rates))


def test_ext_placement_optimization(benchmark):
    base = ExperimentHouse(HouseConfig(dwell_s=30.0))
    bounds = base.bounds()
    grid = np.array([[p.position.x, p.position.y] for p in base.training_points()])
    walls = base.environment.walls
    common = dict(walls=walls, eval_points=grid, candidate_spacing_ft=10.0)

    damage_opt = benchmark.pedantic(
        optimize_placement, args=(4, bounds), kwargs=common, rounds=1, iterations=1
    )
    sep_opt = optimize_placement(4, bounds, objective="separability", **common)
    damage_objective = _objective_factory(walls, grid, LogDistanceModel(), 4.0, 15.0, kind="damage")
    corner_damage = damage_objective(corner_placement(bounds))

    layouts = {
        "corners": corner_placement(bounds),
        "damage-opt": damage_opt.positions,
        "separab-opt": sep_opt.positions,
    }
    rows = {}
    for label, positions in layouts.items():
        h = house_with_aps(positions)
        prob, rate = protocol_mean(h, "probabilistic")
        geo, _ = protocol_mean(h, "geometric")
        rows[label] = (damage_objective(positions), prob, rate, geo)

    lines = ["AP placement layouts under the full §5 protocol (6 runs each)"]
    lines.append(
        f"{'layout':<13s}{'worst damage ft':>16s}{'prob mean ft':>14s}{'prob valid%':>13s}{'geo mean ft':>13s}"
    )
    for label, (dmg, prob, rate, geo) in rows.items():
        lines.append(
            f"{label:<13s}{-dmg:>16.2f}{prob:>14.2f}{100 * rate:>12.1f}%{geo:>13.2f}"
        )
    lines.append(
        "damage-opt positions: "
        + ", ".join(f"({p.x:g},{p.y:g})" for p in damage_opt.positions)
    )
    record("EXT-PLAN", "\n".join(lines))

    # The damage optimizer beats the corners on its own objective...
    assert damage_opt.objective >= corner_damage - 1e-9
    # ...and does not lose end-to-end fingerprinting accuracy.
    assert rows["damage-opt"][1] < rows["corners"][1] * 1.15
    # The alias-blind objective is the riskier guide end-to-end.
    assert rows["damage-opt"][1] <= rows["separab-opt"][1] * 1.05
