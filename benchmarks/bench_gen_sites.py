"""GEN-SITES — does the toolkit generalize beyond the §5 house?

The paper evaluates in one 50 ft × 40 ft house where all four APs are
audible everywhere.  This bench runs the same protocol on three site
presets of increasing scale (house → office floor → warehouse) and
checks the family-level shapes that should — and do — change with the
site:

* fingerprinting degrades as structure thins out: lots of walls = lots
  of signature; an open warehouse gives it little to memorize;
* RSSI-ranging error grows with range (a fixed dB error is a fixed
  *ratio* of distance), so the geometric approach collapses at
  warehouse scale;
* the sector (identifying-code) approach is useless in the small house
  (every AP audible everywhere → one code) but becomes competitive the
  moment coverage varies across the floor.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.experiments.runner import run_protocol
from repro.experiments.sites import office_floor, paper_house, warehouse
from repro.planning import coverage_map

ALGS = ("probabilistic", "geometric", "sector")


def build_sites():
    return {
        "house 50x40": paper_house(dwell_s=30.0),
        "office 120x80": office_floor(dwell_s=30.0),
        "warehouse 200x120": warehouse(dwell_s=30.0),
    }


def run_all(sites):
    results = {}
    for label, site in sites.items():
        db = site.training_database(rng=0)
        cm = coverage_map(site.environment, site.bounds(), resolution_ft=5.0)
        results[label] = {
            "coverage_spread": (int(cm.audible_count.min()), int(cm.audible_count.max())),
        }
        for alg in ALGS:
            vals = [
                run_protocol(alg, house=site, rng=seed, training_db=db).metrics.mean_deviation_ft
                for seed in range(3)
            ]
            results[label][alg] = float(np.mean(vals))
    return results


def test_gen_sites(benchmark):
    sites = build_sites()
    results = benchmark.pedantic(run_all, args=(sites,), rounds=1, iterations=1)

    lines = ["Cross-site generalization (mean deviation, ft; 3 runs each)"]
    lines.append(
        f"{'site':<20s}{'audible APs':>12s}" + "".join(f"{a:>15s}" for a in ALGS)
    )
    for label, row in results.items():
        lo, hi = row["coverage_spread"]
        cells = "".join(f"{row[a]:>15.1f}" for a in ALGS)
        lines.append(f"{label:<20s}{f'{lo}-{hi}':>12s}{cells}")
    record("GEN-SITES", "\n".join(lines))

    house, office, ware = results.values()
    # Fingerprinting stays the best approach on structured floors...
    assert house["probabilistic"] < house["geometric"]
    assert office["probabilistic"] < office["geometric"]
    # ...ranging error grows with site scale...
    assert house["geometric"] < office["geometric"] < ware["geometric"]
    # ...and identifying codes go from useless (uniform coverage) to
    # competitive once coverage varies across the floor.
    assert house["sector"] > house["probabilistic"] * 1.5
    assert ware["sector"] < ware["probabilistic"] * 1.2