"""EXT-CONF — design-time confusion predictions vs live behaviour.

The planning package predicts, before any survey, which grid-point
pairs a fingerprinting system will mix up (Gaussian pairwise confusion
from deterministic fingerprint separability).  This bench measures the
§5.1 localizer's *empirical* confusion matrix over the real (shadowed,
fading) channel and scores the prediction's discrimination (AUC: does a
confused pair carry a higher predicted confusion than a clean one?).

Expected shape: AUC well above 0.5 — the pairs the model flags are the
pairs the system confuses — which is the evidence that the planning
metrics are decision-grade, not decoration.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.experiments.confusion import discrimination_auc, measure_confusion
from repro.planning.quality import expected_confusion, fingerprint_separability


def test_ext_confusion_prediction(benchmark, house, training_db):
    localizer = ProbabilisticLocalizer().fit(training_db)

    confusion = benchmark.pedantic(
        measure_confusion,
        args=(localizer, house, training_db),
        kwargs={"n_trials": 8, "dwell_s": 10.0, "rng": 0},
        rounds=1,
        iterations=1,
    )

    grid = training_db.positions()
    dprime = fingerprint_separability(house.environment, grid)
    predicted = expected_confusion(dprime)
    auc, n_confused = discrimination_auc(confusion, predicted)

    worst = confusion.most_confused_pairs(top=3)
    lines = ["Predicted vs empirical confusion (probabilistic, 8 trials/point)"]
    lines.append(f"exact-point accuracy: {100 * confusion.accuracy():.1f}%")
    lines.append(f"mean answer entropy: {confusion.entropy_bits():.2f} bits")
    lines.append("most confused pairs (truth -> answered, empirical prob):")
    for a, b, p in worst:
        lines.append(f"  {a} -> {b}: {p:.2f}")
    lines.append(
        f"prediction AUC over {n_confused} confused pairs: {auc:.3f} "
        "(0.5 = useless, 1.0 = perfect)"
    )
    record("EXT-CONF", "\n".join(lines))

    assert 0.0 < confusion.accuracy() < 1.0  # neither trivial nor broken
    assert auc > 0.7  # design-time metric clearly flags the risky pairs
