"""ABL-NOISE — shadowing-σ ablation.

The paper's conclusion names "the unstableness of the RF signal
strength" as "the largest barrier".  This ablation quantifies it:
sweep the shadowing σ over the plausible indoor range and watch both
approaches degrade — and check the *shape* claim that the probabilistic
approach dominates the geometric one throughout (the paper's own two
results imply it at the calibrated point).

Timing covers the full sweep cell grid (serial workers inside
pytest-benchmark to keep timings fork-free).
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.experiments.house import HouseConfig
from repro.experiments.sweeps import format_table, summarize, sweep
from repro.parallel.pool import ParallelConfig

SIGMAS = [2.0, 4.0, 6.0, 8.0, 10.0]


def run_sweep():
    return sweep(
        "shadowing_sigma_db",
        SIGMAS,
        algorithms=("probabilistic", "geometric"),
        n_runs=3,
        base_config=HouseConfig(dwell_s=30.0),
        parallel=ParallelConfig(max_workers=1),
        seed_label="abl-noise",
    )


def test_abl_noise_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    summary = summarize(rows)
    record("ABL-NOISE", format_table(summary, title="Shadowing σ ablation (dB)"))

    by = {(s["value"], s["algorithm"]): s for s in summary}
    # Shape 1: probabilistic beats geometric at every noise level.
    for sigma in SIGMAS:
        assert (
            by[(sigma, "probabilistic")]["mean_deviation_ft"]
            < by[(sigma, "geometric")]["mean_deviation_ft"]
        )
    # Shape 2: both algorithms degrade from the quietest to the noisiest
    # channel (monotonicity per-step is seed noise; end-to-end must hold).
    for alg in ("probabilistic", "geometric"):
        assert by[(SIGMAS[0], alg)]["mean_deviation_ft"] < by[(SIGMAS[-1], alg)]["mean_deviation_ft"]
        assert by[(SIGMAS[0], alg)]["valid_rate"] >= by[(SIGMAS[-1], alg)]["valid_rate"]
