"""ABL-FACTORS — §6.1: "control one factor each time".

The paper's first future-work item: "perform more experiments that
control one factor each time to explore a more predicable location
model" — listing construction, furniture, people, temperature and
humidity.  The simulator models the controllable ones; this bench runs
the §5 protocol under each single-factor change while holding
everything else at the reference condition.

Expected shapes: occupancy (people blocking paths) is the factor that
bites — bodies attenuate 3-4 dB intermittently, which is *temporal*
noise fingerprints can't average into their means; temperature and
humidity excursions are sub-dB static biases that both approaches
absorb (a static bias cancels in fingerprint *differences* and only
slightly skews the ranging curves).
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.runner import run_protocol
from repro.parallel.rng import stable_seed

FACTORS = [
    ("reference", {}),
    ("hot (35 C)", {"temperature_c": 35.0}),
    ("humid (90%)", {"humidity_pct": 90.0}),
    ("3 people", {"people": 3}),
    ("8 people", {"people": 8}),
    ("no walls", {"with_walls": False}),
]


def run_cells():
    rows = []
    for label, overrides in FACTORS:
        house = ExperimentHouse(HouseConfig(dwell_s=30.0, **overrides))
        for alg in ("probabilistic", "geometric"):
            devs, rates = [], []
            for rep in range(3):
                r = run_protocol(alg, house=house, rng=stable_seed("abl-factors", label, alg, rep))
                devs.append(r.metrics.mean_deviation_ft)
                rates.append(r.metrics.valid_rate)
            rows.append(
                {
                    "factor": label,
                    "algorithm": alg,
                    "mean_deviation_ft": float(np.mean([d for d in devs if np.isfinite(d)])),
                    "valid_rate": float(np.mean(rates)),
                }
            )
    return rows


def test_abl_environmental_factors(benchmark):
    rows = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    lines = ["Single-factor experiments (paper §6.1), vs reference conditions"]
    lines.append(f"{'factor':<14s} {'algorithm':<14s} {'valid%':>7s} {'mean_ft':>8s}")
    for row in rows:
        lines.append(
            f"{row['factor']:<14s} {row['algorithm']:<14s} "
            f"{100 * row['valid_rate']:>6.1f}% {row['mean_deviation_ft']:>8.2f}"
        )
    record("ABL-FACTORS", "\n".join(lines))

    by = {(r["factor"], r["algorithm"]): r for r in rows}
    # Static climate biases are benign for fingerprinting (within noise).
    ref = by[("reference", "probabilistic")]["mean_deviation_ft"]
    assert by[("hot (35 C)", "probabilistic")]["mean_deviation_ft"] < ref * 1.5
    assert by[("humid (90%)", "probabilistic")]["mean_deviation_ft"] < ref * 1.5
    # A crowd is worse than an empty room for fingerprinting.
    assert (
        by[("8 people", "probabilistic")]["mean_deviation_ft"]
        > by[("reference", "probabilistic")]["mean_deviation_ft"] * 0.95
    )
