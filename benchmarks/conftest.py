"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one paper artifact (see DESIGN.md §4).  Each
writes its paper-style table to ``benchmarks/results/<exp>.txt`` (and
prints it), so the numbers recorded in EXPERIMENTS.md are reproducible
with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.experiments.house import ExperimentHouse, HouseConfig

RESULTS_DIR = Path(__file__).parent / "results"


def record(exp_id: str, text: str) -> None:
    """Print a bench's paper-style table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"== {exp_id} =="
    body = f"{banner}\n{text.rstrip()}\n"
    print("\n" + body)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(body, encoding="utf-8")


def pytest_sessionfinish(session, exitstatus):
    """Persist the metrics the bench run emitted (make_report.py renders it)."""
    snap = obs.snapshot()
    if any(snap.values()):
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "metrics.json").write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


@pytest.fixture(scope="session")
def house():
    """The calibrated §5 experiment house (full 90 s dwell protocol)."""
    return ExperimentHouse(HouseConfig())


@pytest.fixture(scope="session")
def training_db(house):
    """One Phase-1 survey shared by the benches that hold Phase 1 fixed."""
    return house.training_database(rng=0)


@pytest.fixture(scope="session")
def test_points(house):
    return house.test_points()


@pytest.fixture(scope="session")
def observations(house, test_points):
    return house.observe_all(test_points, rng=1)
