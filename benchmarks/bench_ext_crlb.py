"""EXT-CRLB — measured algorithms vs the Cramér–Rao lower bounds.

Two bounds, evaluated at the 13 test points of the §5 protocol:

* the **ranging bound** — σ includes the frozen shadowing (7 dB): the
  information available to any estimator that treats the site's
  multipath bias as noise (the §5.2 geometric approach, multilateration);
* the **fingerprinting bound** — σ is the dwell-averaged temporal term
  only: the information available once Phase 1 has converted the
  shadowing into a learned map.

Expected shapes: the ranging methods sit *above* the ranging bound (no
unbiased estimator can beat it); the fingerprinting methods sit *below*
the ranging bound — they are playing a different estimation game, which
is the cleanest quantitative explanation of the paper's own §5 result
pair — while remaining above the fingerprinting bound.
"""

from __future__ import annotations

import numpy as np
from conftest import record

from repro.analysis.crlb import crlb_field, effective_samples
from repro.experiments.runner import run_protocol


def test_ext_crlb_bounds(benchmark, house, training_db, test_points):
    cfg = house.config
    ap_pos = list(house.ap_positions_by_bssid().values())
    pts = np.array([[p.x, p.y] for p in test_points])

    k_eff = effective_samples(
        int(cfg.dwell_s // cfg.scan_interval_s), cfg.scan_interval_s, cfg.temporal_timescale_s
    )
    sigma_temporal = float(np.hypot(cfg.temporal_sigma_db, cfg.noise_db))
    sigma_ranging = float(np.hypot(cfg.shadowing_sigma_db, sigma_temporal / np.sqrt(k_eff)))

    ranging_bound = benchmark(
        crlb_field, pts, ap_pos, sigma_ranging, cfg.pathloss_exponent, 1
    )
    fp_bound = crlb_field(
        pts, ap_pos, sigma_temporal, cfg.pathloss_exponent, int(round(k_eff))
    )

    measured = {}
    for alg in ("probabilistic", "knn", "fieldmle", "geometric", "multilateration"):
        runs = [
            run_protocol(alg, house=house, rng=seed, training_db=training_db)
            for seed in range(4)
        ]
        errors = np.concatenate([r.errors_ft() for r in runs])
        finite = errors[np.isfinite(errors)]
        measured[alg] = float(np.sqrt((finite**2).mean()))

    r_mean = float(ranging_bound.mean())
    f_mean = float(fp_bound.mean())
    lines = ["Measured RMSE vs Cramér-Rao bounds (13 test points, 4 runs)"]
    lines.append(
        f"ranging CRLB (shadowing-as-noise, sigma={sigma_ranging:.1f} dB): {r_mean:6.2f} ft"
    )
    lines.append(
        f"fingerprint CRLB (temporal only, K_eff={k_eff:.0f}):            {f_mean:6.2f} ft"
    )
    for alg, rmse in sorted(measured.items(), key=lambda kv: kv[1]):
        side = "below ranging bound" if rmse < r_mean else "above ranging bound"
        lines.append(f"{alg:<16s} RMSE {rmse:6.2f} ft   ({side})")
    lines.append(
        "reading: fingerprinting crosses below the ranging bound because "
        "Phase 1 turns shadowing from noise into map"
    )
    record("EXT-CRLB", "\n".join(lines))

    # Ranging estimators cannot beat the shadowing-inclusive bound.
    assert measured["geometric"] > r_mean
    assert measured["multilateration"] > r_mean
    # Fingerprinting operates beyond it...
    assert measured["knn"] < r_mean
    # ...but not beyond its own information limit.
    assert all(rmse > f_mean for rmse in measured.values())
