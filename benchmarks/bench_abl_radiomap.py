"""ABL-MAP — radio-map construction ablation: IDW vs Gaussian process.

The field-MLE localizer's accuracy is bounded by its interpolated radio
map.  This ablation compares map constructions under the §5 protocol:

* IDW over the 4 nearest training points (the classic);
* a GP with physically-motivated default hyper-parameters;
* the same GP after maximum-marginal-likelihood tuning.

Expected shapes: the tuned GP wins — and, the scientifically satisfying
part, its selected length scale *recovers the simulator's true
shadowing correlation length* (5 ft) from the survey data alone, a
consistency check between two entirely separate parts of the codebase.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import record

from repro.algorithms.fieldmle import FieldMLELocalizer
from repro.algorithms.radiomap import GPRadioMap
from repro.experiments.runner import run_protocol


def test_abl_radiomap_construction(benchmark, house, training_db):
    ap_pos = house.ap_positions_by_bssid()
    variants = {
        "idw(k=4)": dict(field="idw"),
        "gp default": dict(field="gp", ap_positions=ap_pos, tune_gp=False),
        "gp tuned": dict(field="gp", ap_positions=ap_pos, tune_gp=True),
    }

    def run_variant(kwargs):
        vals, rates = [], []
        for seed in range(5):
            r = run_protocol(
                FieldMLELocalizer(**kwargs), house=house, rng=seed, training_db=training_db
            )
            vals.append(r.metrics.mean_deviation_ft)
            rates.append(r.metrics.valid_rate)
        return float(np.mean(vals)), float(np.mean(rates))

    results = {}
    for label, kwargs in variants.items():
        results[label] = run_variant(kwargs)

    benchmark.pedantic(
        lambda: FieldMLELocalizer(field="gp", ap_positions=ap_pos).fit(training_db),
        rounds=1,
        iterations=1,
    )

    gp = GPRadioMap(training_db, ap_positions=ap_pos)
    ls, sf = gp.fit_hyperparameters()

    lines = ["Radio-map construction ablation (fieldmle, §5 protocol, 5 runs)"]
    lines.append(f"{'map':<14s}{'mean_ft':>9s}{'valid%':>8s}")
    for label, (mean, rate) in results.items():
        lines.append(f"{label:<14s}{mean:>9.2f}{100 * rate:>7.1f}%")
    lines.append(
        f"GP marginal-likelihood selection: length scale {ls:g} ft "
        f"(simulator's true shadowing correlation: "
        f"{house.config.shadowing_correlation_ft:g} ft), signal sigma {sf:g} dB"
    )
    record("ABL-MAP", "\n".join(lines))

    assert results["gp tuned"][0] <= results["idw(k=4)"][0] + 0.5
    assert results["gp tuned"][0] <= results["gp default"][0] + 1e-9
    # The data-driven length scale lands on the true correlation length.
    assert ls == pytest.approx(house.config.shadowing_correlation_ft, abs=3.1)

