"""BENCH-TRACK — streaming tracking sessions against a live server.

The tracking-session acceptance criterion: 10k concurrent simulated
trajectories stepped over ``POST /v1/track/{session}`` must (a) keep
p99 step latency sane while the measurement passes are coalesced onto
the vectorized ``locate_many`` kernels, and (b) actually *track* —
the filtered position must beat the single-shot fix the same response
carries (``tracking.raw``), scan for scan, on median error.

Each session perturbs a shared template walk with its own RSSI noise,
so ground truth is known per step and the 10k devices are distinct
streams, not one request replayed.  Load is closed-loop: W workers,
each stepping its share of the sessions round-robin, so every session
interleaves with thousands of others inside the coalescing window —
the regime the session batcher exists for.

Numbers land machine-readable in ``benchmarks/results/BENCH_TRACK.json``
alongside the paper-style table.
"""

from __future__ import annotations

import json
import statistics
import threading
import time

import numpy as np
from conftest import RESULTS_DIR, record
from loadgen import observation_doc

from repro.serve import LocalizationHTTPServer, LocalizationService
from repro.serve.client import ServiceClient

N_SESSIONS = 10_000
N_WORKERS = 32
N_TEMPLATES = 8
STEPS_PER_SESSION = 6
SESSION_NOISE_DB = 2.0  # per-session RSSI perturbation on the templates

#: Acceptance floors.  p99 is deliberately loose (CI machines vary;
#: the reference machine sits well under 100 ms); the accuracy floor
#: is the point of the subsystem — filtering must not *lose* to the
#: single-shot fix it is built on.
MAX_P99_MS = 400.0
MAX_MEDIAN_RATIO = 1.0  # median tracking error / median single-shot error


WALK_SPEED_FT_S = 4.0  # per-step displacement at dt_s = 1.0


def _template_walks(house, rng):
    """N short ground-truth walks with their clean observations.

    Walks are straight segments at walking speed — motion the kalman
    constant-velocity model is built for (a random hop between survey
    points would be teleportation, which no filter should smooth)."""
    x0, y0, x1, y1 = house.bounds()
    margin = 3.0
    walks = []
    for _ in range(N_TEMPLATES):
        while True:
            start = np.array([rng.uniform(x0 + margin, x1 - margin),
                              rng.uniform(y0 + margin, y1 - margin)])
            heading = rng.uniform(0.0, 2.0 * np.pi)
            step = WALK_SPEED_FT_S * np.array([np.cos(heading), np.sin(heading)])
            end = start + step * (STEPS_PER_SESSION - 1)
            if (x0 + margin <= end[0] <= x1 - margin
                    and y0 + margin <= end[1] <= y1 - margin):
                break
        path = [type(house.test_points()[0])(*(start + i * step))
                for i in range(STEPS_PER_SESSION)]
        observations = [house.observe(p, rng=int(rng.integers(1 << 30)), dwell_s=2.0)
                        for p in path]
        walks.append((path, observations))
    return walks


def _session_docs(walks, session_i, rng):
    """One device's stream: its template walk + private RSSI noise."""
    path, observations = walks[session_i % N_TEMPLATES]
    docs = []
    for o in observations:
        samples = o.samples + rng.normal(0.0, SESSION_NOISE_DB, size=o.samples.shape)
        docs.append(observation_doc(type(o)(samples, o.bssids)))
    return path, docs


def test_track_sessions_at_scale(house, training_db):
    service = LocalizationService(
        training_db,
        ap_positions=house.ap_positions_by_bssid(),
        bounds=house.bounds(),
    )
    rng = np.random.default_rng(7)
    walks = _template_walks(house, rng)
    session_seeds = rng.integers(1 << 30, size=N_SESSIONS)

    reports = []
    track_err = []  # (step_i, error_ft) for the filtered position
    shot_err = []   # same scans, the raw single-shot fix
    lock = threading.Lock()

    def worker(worker_i, port):
        client = ServiceClient(port=port, max_retries=0, timeout_s=60.0)
        own = range(worker_i, N_SESSIONS, N_WORKERS)
        streams = {
            s: _session_docs(walks, s, np.random.default_rng(session_seeds[s]))
            for s in own
        }
        local_reports, local_track, local_shot = [], [], []
        for step_i in range(STEPS_PER_SESSION):
            for s in own:
                path, docs = streams[s]
                r = client.track(f"dev-{s}", docs[step_i], dt_s=1.0)
                local_reports.append(r)
                if r.ok and r.doc.get("valid"):
                    truth = path[step_i]
                    pos = r.doc["position"]
                    local_track.append(
                        (step_i, truth.distance_to(type(truth)(pos["x"], pos["y"])))
                    )
                    raw = r.doc["tracking"]["raw"]
                    if raw["valid"]:
                        local_shot.append(
                            (step_i,
                             truth.distance_to(type(truth)(raw["x"], raw["y"])))
                        )
        with lock:
            reports.extend(local_reports)
            track_err.extend(local_track)
            shot_err.extend(local_shot)

    with LocalizationHTTPServer(
        service,
        max_batch=64,
        max_wait_ms=2.0,
        max_queue=4096,
        session_capacity=N_SESSIONS + 2000,
    ) as server:
        started = time.monotonic()
        threads = [
            threading.Thread(target=worker, args=(w, server.port))
            for w in range(N_WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.monotonic() - started
        health = ServiceClient(port=server.port).healthz()

    n_ok = sum(1 for r in reports if r.ok)
    assert n_ok == N_SESSIONS * STEPS_PER_SESSION, (
        f"non-ok steps under load: "
        f"{[(r.category, r.status) for r in reports if not r.ok][:5]}"
    )
    occupancy = health.doc["checks"]["sessions"]["detail"]
    assert occupancy["active"] == N_SESSIONS

    latencies_ms = sorted(1000.0 * r.latency_s for r in reports)
    p50 = latencies_ms[len(latencies_ms) // 2]
    p99 = latencies_ms[int(0.99 * (len(latencies_ms) - 1))]
    rps = len(reports) / wall

    # Accuracy: skip the first scan — the filter has no history yet,
    # so step 0 *is* the single-shot answer and would dilute both sides.
    settled_track = [e for i, e in track_err if i >= 1]
    settled_shot = [e for i, e in shot_err if i >= 1]
    med_track = statistics.median(settled_track)
    med_shot = statistics.median(settled_shot)
    ratio = med_track / med_shot

    lines = [
        f"{N_SESSIONS} concurrent tracking sessions x {STEPS_PER_SESSION} steps, "
        f"{N_WORKERS} closed-loop workers",
        f"steps/s: {rps:.0f}   p50: {p50:.1f} ms   p99: {p99:.1f} ms "
        f"(floor {MAX_P99_MS:.0f} ms)",
        f"median error (steps>=2): tracked {med_track:.2f} ft, "
        f"single-shot {med_shot:.2f} ft  ({ratio:.2f}x, floor {MAX_MEDIAN_RATIO:.2f}x)",
    ]
    record("BENCH-TRACK", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_TRACK.json").write_text(
        json.dumps(
            {
                "sessions": N_SESSIONS,
                "steps_per_session": STEPS_PER_SESSION,
                "workers": N_WORKERS,
                "wall_s": round(wall, 3),
                "steps_per_s": round(rps, 1),
                "p50_ms": round(p50, 2),
                "p99_ms": round(p99, 2),
                "median_tracking_error_ft": round(med_track, 3),
                "median_single_shot_error_ft": round(med_shot, 3),
                "tracking_error_ratio": round(ratio, 3),
                "floors": {"p99_ms": MAX_P99_MS, "error_ratio": MAX_MEDIAN_RATIO},
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    assert p99 <= MAX_P99_MS, (
        f"p99 step latency {p99:.1f} ms above the {MAX_P99_MS:.0f} ms floor"
    )
    assert ratio <= MAX_MEDIAN_RATIO, (
        f"tracking (median {med_track:.2f} ft) lost to the single-shot fix "
        f"(median {med_shot:.2f} ft) it filters"
    )
